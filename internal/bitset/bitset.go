// Package bitset provides a growable dense bitset over small integer
// indices. The constraint solver uses it for effect-variable atom
// sets, intersection-node gate sets, and reachability results, where
// the members are interned atom IDs or abstract locations — both
// dense int32 index spaces — and the dominant operations are
// insert-if-absent and iterate.
package bitset

import "math/bits"

// Set is a growable bitset. The zero value is an empty set ready for
// use; it allocates nothing until the first Add.
type Set struct {
	words []uint64
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	w := i >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(i)&63)) != 0
}

// Add inserts i, growing the set as needed, and reports whether i was
// newly added (false if it was already present). This combined
// test-and-set is the solver's hot operation: one bounds check, one
// word read, one word write.
func (s *Set) Add(i int) bool {
	w := i >> 6
	if w >= len(s.words) {
		// Min 4 words: sets that grow member-by-member from empty would
		// otherwise churn through 1-, then 2-word allocations.
		grown := make([]uint64, max(w+1, 2*len(s.words), 4))
		copy(grown, s.words)
		s.words = grown
	}
	bit := uint64(1) << (uint(i) & 63)
	if s.words[w]&bit != 0 {
		return false
	}
	s.words[w] |= bit
	return true
}

// Remove deletes i if present.
func (s *Set) Remove(i int) {
	w := i >> 6
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(i) & 63)
	}
}

// Len counts the members.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls f for every member in increasing order. f must not
// mutate the set (collect into a scratch slice first if a pass needs
// to remove or re-add members).
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendMembers appends every member to dst in increasing order and
// returns the extended slice. It exists so iterate-and-mutate passes
// (the solver's re-canonicalization) can snapshot a set without an
// allocation per call.
func (s *Set) AppendMembers(dst []int32) []int32 {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			dst = append(dst, int32(base+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// Clear removes all members, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Arena returns n sets each pre-sized to hold members below words×64,
// carved from a single backing allocation — one make instead of n
// (plus growth churn) when the caller can bound the index space up
// front. A set that outgrows its slice reallocates independently;
// growth copies into a fresh slice, so the shared backing is never
// written past a set's own window.
func Arena(n, words int) []Set {
	var b ArenaBuf
	return b.Carve(n, words)
}

// ArenaBuf is a reusable backing for Arena carvings: a pooled solver
// checks one out per solve and calls Carve instead of Arena, so the
// steady state re-zeroes one retained allocation instead of making a
// fresh one. The zero value is ready for use.
type ArenaBuf struct {
	words []uint64
	sets  []Set
}

// Carve returns n sets each pre-sized for members below words×64,
// reusing the buffer's backing storage when it is large enough (the
// reused region is zeroed). The returned slice and its sets remain
// valid until the next Carve; callers must not use them past that.
func (b *ArenaBuf) Carve(n, words int) []Set {
	if cap(b.sets) >= n {
		b.sets = b.sets[:n]
		for i := range b.sets {
			b.sets[i].words = nil
		}
	} else {
		b.sets = make([]Set, n)
	}
	sets := b.sets
	if words <= 0 || n == 0 {
		return sets
	}
	need := n * words
	if cap(b.words) >= need {
		b.words = b.words[:need]
		clear(b.words)
	} else {
		b.words = make([]uint64, need)
	}
	for i := range sets {
		sets[i].words = b.words[i*words : (i+1)*words : (i+1)*words]
	}
	return sets
}
