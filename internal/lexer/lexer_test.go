package lexer

import (
	"testing"

	"localalias/internal/source"
	"localalias/internal/token"
)

func scan(t *testing.T, src string) ([]Token, *source.Diagnostics) {
	t.Helper()
	var diags source.Diagnostics
	toks := ScanAll(source.NewFile("test.mc", src), &diags)
	return toks, &diags
}

func kinds(toks []Token) []token.Kind {
	var ks []token.Kind
	for _, t := range toks {
		ks = append(ks, t.Kind)
	}
	return ks
}

func TestScanEmpty(t *testing.T) {
	toks, diags := scan(t, "")
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %s", diags)
	}
	if len(toks) != 1 || toks[0].Kind != token.EOF {
		t.Fatalf("want single EOF, got %v", kinds(toks))
	}
}

func TestScanKeywordsAndIdents(t *testing.T) {
	toks, diags := scan(t, "let restrict confine in new fun foo bar_2 _x ref")
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %s", diags)
	}
	want := []token.Kind{
		token.KwLet, token.KwRestrict, token.KwConfine, token.KwIn,
		token.KwNew, token.KwFun, token.Ident, token.Ident, token.Ident,
		token.KwRef, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count: got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok %d: got %v want %v", i, got[i], want[i])
		}
	}
	if toks[6].Lit != "foo" || toks[7].Lit != "bar_2" || toks[8].Lit != "_x" {
		t.Errorf("identifier spellings wrong: %q %q %q", toks[6].Lit, toks[7].Lit, toks[8].Lit)
	}
}

func TestScanOperators(t *testing.T) {
	toks, diags := scan(t, "+ - * / % & && || ! = == != < <= > >= -> . ( ) [ ] { } , ; : ?")
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %s", diags)
	}
	want := []token.Kind{
		token.Plus, token.Minus, token.Star, token.Slash, token.Percent,
		token.Amp, token.AndAnd, token.OrOr, token.Not, token.Assign,
		token.Eq, token.NotEq, token.Less, token.LessEq, token.Greater,
		token.GreatEq, token.Arrow, token.Dot, token.LParen, token.RParen,
		token.LBrack, token.RBrack, token.LBrace, token.RBrace,
		token.Comma, token.Semi, token.Colon, token.Question, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count: got %d want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestScanMaximalMunch(t *testing.T) {
	// "a&&b" must be AndAnd, "a&b" must be Amp, "a->b" Arrow not Minus+Greater.
	toks, _ := scan(t, "a&&b a&b a->b a-b")
	want := []token.Kind{
		token.Ident, token.AndAnd, token.Ident,
		token.Ident, token.Amp, token.Ident,
		token.Ident, token.Arrow, token.Ident,
		token.Ident, token.Minus, token.Ident,
		token.EOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tok %d: got %v want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestScanNumbers(t *testing.T) {
	toks, diags := scan(t, "0 42 123456")
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %s", diags)
	}
	if toks[0].Lit != "0" || toks[1].Lit != "42" || toks[2].Lit != "123456" {
		t.Errorf("number literals wrong: %q %q %q", toks[0].Lit, toks[1].Lit, toks[2].Lit)
	}
}

func TestScanMalformedNumber(t *testing.T) {
	toks, diags := scan(t, "12ab")
	if !diags.HasErrors() {
		t.Fatal("want error for malformed number")
	}
	if toks[0].Kind != token.Illegal {
		t.Errorf("want Illegal token, got %v", toks[0].Kind)
	}
}

func TestScanComments(t *testing.T) {
	toks, diags := scan(t, "a // line comment\nb /* block\ncomment */ c")
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %s", diags)
	}
	want := []token.Kind{token.Ident, token.Ident, token.Ident, token.EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestScanUnterminatedComment(t *testing.T) {
	_, diags := scan(t, "a /* never closed")
	if !diags.HasErrors() {
		t.Fatal("want error for unterminated comment")
	}
}

func TestScanIllegalChar(t *testing.T) {
	toks, diags := scan(t, "a $ b")
	if !diags.HasErrors() {
		t.Fatal("want error for illegal character")
	}
	if toks[1].Kind != token.Illegal {
		t.Errorf("want Illegal, got %v", toks[1].Kind)
	}
}

func TestScanPositions(t *testing.T) {
	f := source.NewFile("pos.mc", "let x = 10;\nlet y = 2;\n")
	var diags source.Diagnostics
	toks := ScanAll(f, &diags)
	// Token "10" starts at line 1 column 9.
	var ten Token
	for _, tk := range toks {
		if tk.Lit == "10" {
			ten = tk
		}
	}
	pos := f.Position(ten.Span.Start)
	if pos.Line != 1 || pos.Column != 9 {
		t.Errorf("position of 10: got %v, want 1:9", pos)
	}
	// Second "let" is line 2 column 1.
	lets := 0
	for _, tk := range toks {
		if tk.Kind == token.KwLet {
			lets++
			if lets == 2 {
				pos := f.Position(tk.Span.Start)
				if pos.Line != 2 || pos.Column != 1 {
					t.Errorf("position of second let: got %v, want 2:1", pos)
				}
			}
		}
	}
	if lets != 2 {
		t.Fatalf("expected 2 let tokens, got %d", lets)
	}
}

func TestScanWholeProgram(t *testing.T) {
	src := `
struct dev { l: lock; count: int; }
global locks: lock[16];
fun do_with_lock(l: ref lock) {
    spin_lock(l);
    work();
    spin_unlock(l);
}
`
	_, diags := scan(t, src)
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %s", diags)
	}
}
