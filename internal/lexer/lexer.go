// Package lexer implements the MiniC scanner.
//
// The scanner is a conventional hand-written one-pass lexer producing
// token.Kind values with spans into the underlying source.File. Line
// comments (// ...) and block comments (/* ... */) are skipped.
package lexer

import (
	"localalias/internal/source"
	"localalias/internal/token"
)

// Token is one lexed token.
type Token struct {
	Kind token.Kind
	// Lit is the spelling for Ident and Int tokens and the unquoted
	// contents for String tokens, empty otherwise.
	Lit  string
	Span source.Span
}

// Lexer scans one file.
type Lexer struct {
	file  *source.File
	diags *source.Diagnostics

	src  string
	off  int // current reading offset
	next int // offset after current rune (bytes; MiniC is ASCII)
}

// New returns a Lexer over file, reporting malformed input to diags.
func New(file *source.File, diags *source.Diagnostics) *Lexer {
	return &Lexer{file: file, diags: diags, src: file.Text}
}

// ScanAll lexes the entire file, returning the tokens including a
// trailing EOF token.
func ScanAll(file *source.File, diags *source.Diagnostics) []Token {
	lx := New(file, diags)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(i int) byte {
	if lx.off+i >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+i]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipTrivia consumes whitespace and comments. It reports unterminated
// block comments.
func (lx *Lexer) skipTrivia() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case isSpace(c):
			lx.off++
		case c == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.src[lx.off] != '\n' {
				lx.off++
			}
		case c == '/' && lx.peekAt(1) == '*':
			start := lx.off
			lx.off += 2
			closed := false
			for lx.off+1 < len(lx.src) {
				if lx.src[lx.off] == '*' && lx.src[lx.off+1] == '/' {
					lx.off += 2
					closed = true
					break
				}
				lx.off++
			}
			if !closed {
				lx.off = len(lx.src)
				lx.errorf(source.Span{Start: source.Pos(start), End: source.Pos(lx.off)},
					"unterminated block comment")
			}
		default:
			return
		}
	}
}

func (lx *Lexer) errorf(sp source.Span, format string, args ...any) {
	if lx.diags != nil {
		lx.diags.Errorf(lx.file, sp, "lex", format, args...)
	}
}

// Next returns the next token, or an EOF token at end of input.
func (lx *Lexer) Next() Token {
	lx.skipTrivia()
	start := lx.off
	if lx.off >= len(lx.src) {
		return Token{Kind: token.EOF, Span: source.Span{Start: source.Pos(start), End: source.Pos(start)}}
	}
	c := lx.advance()
	mk := func(k token.Kind) Token {
		return Token{Kind: k, Span: source.Span{Start: source.Pos(start), End: source.Pos(lx.off)}}
	}
	switch {
	case isIdentStart(c):
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			lx.off++
		}
		lit := lx.src[start:lx.off]
		kind := token.LookupIdent(lit)
		t := mk(kind)
		if kind == token.Ident {
			t.Lit = lit
		}
		return t
	case isDigit(c):
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.off++
		}
		if lx.off < len(lx.src) && isIdentStart(lx.peek()) {
			for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
				lx.off++
			}
			sp := source.Span{Start: source.Pos(start), End: source.Pos(lx.off)}
			lx.errorf(sp, "malformed number %q", lx.src[start:lx.off])
			return Token{Kind: token.Illegal, Lit: lx.src[start:lx.off], Span: sp}
		}
		t := mk(token.Int)
		t.Lit = lx.src[start:lx.off]
		return t
	}
	switch c {
	case '"':
		// String literals name import paths; no escapes, single line.
		for lx.off < len(lx.src) && lx.peek() != '"' && lx.peek() != '\n' {
			lx.off++
		}
		if lx.off >= len(lx.src) || lx.peek() != '"' {
			sp := source.Span{Start: source.Pos(start), End: source.Pos(lx.off)}
			lx.errorf(sp, "unterminated string literal")
			return Token{Kind: token.Illegal, Lit: lx.src[start:lx.off], Span: sp}
		}
		lx.off++ // closing quote
		t := mk(token.String)
		t.Lit = lx.src[start+1 : lx.off-1]
		return t
	case '+':
		return mk(token.Plus)
	case '-':
		if lx.peek() == '>' {
			lx.off++
			return mk(token.Arrow)
		}
		return mk(token.Minus)
	case '*':
		return mk(token.Star)
	case '/':
		return mk(token.Slash)
	case '%':
		return mk(token.Percent)
	case '&':
		if lx.peek() == '&' {
			lx.off++
			return mk(token.AndAnd)
		}
		return mk(token.Amp)
	case '|':
		if lx.peek() == '|' {
			lx.off++
			return mk(token.OrOr)
		}
	case '!':
		if lx.peek() == '=' {
			lx.off++
			return mk(token.NotEq)
		}
		return mk(token.Not)
	case '=':
		if lx.peek() == '=' {
			lx.off++
			return mk(token.Eq)
		}
		return mk(token.Assign)
	case '<':
		if lx.peek() == '=' {
			lx.off++
			return mk(token.LessEq)
		}
		return mk(token.Less)
	case '>':
		if lx.peek() == '=' {
			lx.off++
			return mk(token.GreatEq)
		}
		return mk(token.Greater)
	case '.':
		return mk(token.Dot)
	case '(':
		return mk(token.LParen)
	case ')':
		return mk(token.RParen)
	case '[':
		return mk(token.LBrack)
	case ']':
		return mk(token.RBrack)
	case '{':
		return mk(token.LBrace)
	case '}':
		return mk(token.RBrace)
	case ',':
		return mk(token.Comma)
	case ';':
		return mk(token.Semi)
	case ':':
		return mk(token.Colon)
	case '?':
		return mk(token.Question)
	}
	t := mk(token.Illegal)
	t.Lit = string(c)
	lx.errorf(t.Span, "unexpected character %q", c)
	return t
}
