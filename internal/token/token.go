// Package token defines the lexical tokens of MiniC, the small
// imperative language over which the restrict/confine type-and-effect
// systems of Aiken et al. (PLDI 2003) are implemented.
//
// MiniC is the paper's core language (variables, integers, new,
// dereference, assignment, let, restrict, confine) extended with the
// standard features needed to express Linux-driver-style locking code:
// functions, blocks, conditionals, loops, arrays, structs, globals,
// address-of, field access, and the spin_lock/spin_unlock/change_type
// builtins.
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// The token kinds.
const (
	Illegal Kind = iota
	EOF
	Comment

	// Literals and identifiers.
	Ident  // foo
	Int    // 1234
	String // "pkg"

	// Operators and delimiters.
	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %

	Amp     // &
	AndAnd  // &&
	OrOr    // ||
	Not     // !
	Assign  // =
	Eq      // ==
	NotEq   // !=
	Less    // <
	LessEq  // <=
	Greater // >
	GreatEq // >=

	Arrow // ->
	Dot   // .

	LParen   // (
	RParen   // )
	LBrack   // [
	RBrack   // ]
	LBrace   // {
	RBrace   // }
	Comma    // ,
	Semi     // ;
	Colon    // :
	Question // ?

	// Keywords.
	KwLet
	KwRestrict
	KwConfine
	KwIn
	KwNew
	KwFun
	KwReturn
	KwIf
	KwElse
	KwWhile
	KwGlobal
	KwStruct
	KwInt
	KwUnit
	KwLock
	KwRef
	KwImport

	kindCount
)

var kindNames = [...]string{
	Illegal:  "ILLEGAL",
	EOF:      "EOF",
	Comment:  "COMMENT",
	Ident:    "IDENT",
	Int:      "INT",
	String:   "STRING",
	Plus:     "+",
	Minus:    "-",
	Star:     "*",
	Slash:    "/",
	Percent:  "%",
	Amp:      "&",
	AndAnd:   "&&",
	OrOr:     "||",
	Not:      "!",
	Assign:   "=",
	Eq:       "==",
	NotEq:    "!=",
	Less:     "<",
	LessEq:   "<=",
	Greater:  ">",
	GreatEq:  ">=",
	Arrow:    "->",
	Dot:      ".",
	LParen:   "(",
	RParen:   ")",
	LBrack:   "[",
	RBrack:   "]",
	LBrace:   "{",
	RBrace:   "}",
	Comma:    ",",
	Semi:     ";",
	Colon:    ":",
	Question: "?",

	KwLet:      "let",
	KwRestrict: "restrict",
	KwConfine:  "confine",
	KwIn:       "in",
	KwNew:      "new",
	KwFun:      "fun",
	KwReturn:   "return",
	KwIf:       "if",
	KwElse:     "else",
	KwWhile:    "while",
	KwGlobal:   "global",
	KwStruct:   "struct",
	KwInt:      "int",
	KwUnit:     "unit",
	KwLock:     "lock",
	KwRef:      "ref",
	KwImport:   "import",
}

// String returns the spelling of the token kind (or its class name for
// variable-spelling kinds like Ident and Int).
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their kinds.
var Keywords = map[string]Kind{
	"let":      KwLet,
	"restrict": KwRestrict,
	"confine":  KwConfine,
	"in":       KwIn,
	"new":      KwNew,
	"fun":      KwFun,
	"return":   KwReturn,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"global":   KwGlobal,
	"struct":   KwStruct,
	"int":      KwInt,
	"unit":     KwUnit,
	"lock":     KwLock,
	"ref":      KwRef,
	"import":   KwImport,
}

// LookupIdent classifies an identifier spelling, returning the keyword
// kind when the spelling is reserved and Ident otherwise.
func LookupIdent(s string) Kind {
	if k, ok := Keywords[s]; ok {
		return k
	}
	return Ident
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k >= KwLet && k < kindCount }

// IsLiteral reports whether k carries a spelling of its own
// (identifier, integer, or string literal).
func (k Kind) IsLiteral() bool { return k == Ident || k == Int || k == String }

// Precedence returns the binary-operator precedence of k, higher
// binding tighter, or 0 when k is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Eq, NotEq, Less, LessEq, Greater, GreatEq:
		return 3
	case Plus, Minus:
		return 4
	case Star, Slash, Percent:
		return 5
	}
	return 0
}
