package token

import "testing"

func TestLookupIdent(t *testing.T) {
	cases := map[string]Kind{
		"let":      KwLet,
		"restrict": KwRestrict,
		"confine":  KwConfine,
		"in":       KwIn,
		"new":      KwNew,
		"fun":      KwFun,
		"return":   KwReturn,
		"if":       KwIf,
		"else":     KwElse,
		"while":    KwWhile,
		"global":   KwGlobal,
		"struct":   KwStruct,
		"int":      KwInt,
		"unit":     KwUnit,
		"lock":     KwLock,
		"ref":      KwRef,
		"foo":      Ident,
		"Restrict": Ident, // keywords are case-sensitive
		"":         Ident,
	}
	for s, want := range cases {
		if got := LookupIdent(s); got != want {
			t.Errorf("LookupIdent(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	// Every keyword's String must equal its spelling.
	for s, k := range Keywords {
		if k.String() != s {
			t.Errorf("%v.String() = %q, want %q", k, k.String(), s)
		}
	}
	cases := map[Kind]string{
		Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
		Amp: "&", AndAnd: "&&", OrOr: "||", Not: "!", Assign: "=",
		Eq: "==", NotEq: "!=", Less: "<", LessEq: "<=",
		Greater: ">", GreatEq: ">=", Arrow: "->", Dot: ".",
		LParen: "(", RParen: ")", LBrack: "[", RBrack: "]",
		LBrace: "{", RBrace: "}", Comma: ",", Semi: ";", Colon: ":",
		EOF: "EOF", Ident: "IDENT", Int: "INT", Illegal: "ILLEGAL",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(9999).String() == "" {
		t.Error("out-of-range kinds must still render")
	}
}

func TestIsKeyword(t *testing.T) {
	for _, k := range []Kind{KwLet, KwRestrict, KwRef, KwLock} {
		if !k.IsKeyword() {
			t.Errorf("%v must be a keyword", k)
		}
	}
	for _, k := range []Kind{Ident, Int, Plus, EOF, Illegal} {
		if k.IsKeyword() {
			t.Errorf("%v must not be a keyword", k)
		}
	}
}

func TestIsLiteral(t *testing.T) {
	if !Ident.IsLiteral() || !Int.IsLiteral() {
		t.Error("Ident and Int carry spellings")
	}
	if Plus.IsLiteral() || KwLet.IsLiteral() {
		t.Error("operators and keywords do not")
	}
}

func TestPrecedence(t *testing.T) {
	// || < && < comparisons < additive < multiplicative.
	ordered := [][]Kind{
		{OrOr},
		{AndAnd},
		{Eq, NotEq, Less, LessEq, Greater, GreatEq},
		{Plus, Minus},
		{Star, Slash, Percent},
	}
	for level, ks := range ordered {
		for _, k := range ks {
			if k.Precedence() != level+1 {
				t.Errorf("%v precedence = %d, want %d", k, k.Precedence(), level+1)
			}
		}
	}
	for _, k := range []Kind{Assign, Not, LParen, Ident, EOF} {
		if k.Precedence() != 0 {
			t.Errorf("%v is not a binary operator", k)
		}
	}
}
