package bench_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"localalias/internal/bench"
	"localalias/internal/client"
	"localalias/internal/drivergen"
	"localalias/internal/service"
)

func benchTarget(t *testing.T) *client.Client {
	t.Helper()
	srv := service.NewServer(service.ServerOptions{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL, client.Options{Retry: client.RetryPolicy{MaxAttempts: 1}})
}

func workload(n int) []service.AnalyzeRequest {
	reqs := make([]service.AnalyzeRequest, 0, n)
	for _, spec := range drivergen.Corpus()[:n] {
		reqs = append(reqs, service.AnalyzeRequest{
			Module: spec.Name + ".mc", Source: spec.Source(),
			Options: service.AnalyzeOptions{Mode: service.ModeCheck}})
	}
	return reqs
}

// TestRunOpenLoop: a short run at modest RPS completes cleanly and the
// report's accounting adds up.
func TestRunOpenLoop(t *testing.T) {
	c := benchTarget(t)
	rep, err := bench.Run(context.Background(), bench.Options{
		Client:   c,
		RPS:      100,
		Duration: 500 * time.Millisecond,
		Requests: workload(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Completed == 0 {
		t.Fatalf("report = %+v; want traffic", rep)
	}
	if rep.Completed+rep.Rejected+rep.Errors+rep.Shed != rep.Offered {
		t.Errorf("accounting: %d completed + %d rejected + %d errors + %d shed != %d offered",
			rep.Completed, rep.Rejected, rep.Errors, rep.Shed, rep.Offered)
	}
	if rep.Errors != 0 {
		t.Errorf("%d transport errors against a live daemon", rep.Errors)
	}
	if rep.CacheHits+rep.CacheMisses != rep.Completed {
		t.Errorf("cache split %d+%d != completed %d", rep.CacheHits, rep.CacheMisses, rep.Completed)
	}
	if rep.LatencyMsP50 <= 0 || rep.LatencyMsP99 < rep.LatencyMsP50 {
		t.Errorf("implausible quantiles: p50=%v p99=%v", rep.LatencyMsP50, rep.LatencyMsP99)
	}
	if rep.AchievedRPS <= 0 {
		t.Error("achieved RPS is zero with completed requests")
	}
}

// TestRunWarm: a warm pass fills the cache, so the timed run hits on
// every replayed request.
func TestRunWarm(t *testing.T) {
	c := benchTarget(t)
	rep, err := bench.Run(context.Background(), bench.Options{
		Client:   c,
		RPS:      80,
		Duration: 400 * time.Millisecond,
		Requests: workload(6),
		Warm:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("no completed requests")
	}
	if rep.CacheMisses != 0 {
		t.Errorf("%d misses after a warm pass over the whole workload", rep.CacheMisses)
	}
	if rep.HitRate != 1 {
		t.Errorf("hit rate %v after warm pass, want 1", rep.HitRate)
	}
}

// TestRunSheds: with one outstanding slot against a stalled backend,
// the open loop sheds arrivals instead of blocking the schedule.
func TestRunSheds(t *testing.T) {
	// A backend that stalls 50ms per request: one outstanding slot at
	// 200 rps must shed most of the schedule.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(50 * time.Millisecond)
		w.Header().Set("X-Lna-Cache", "miss")
		w.Write([]byte("{}\n"))
	}))
	t.Cleanup(ts.Close)
	c := client.New(ts.URL, client.Options{Retry: client.RetryPolicy{MaxAttempts: 1}})
	reqs := workload(4)
	rep, err := bench.Run(context.Background(), bench.Options{
		Client:         c,
		RPS:            200,
		Duration:       250 * time.Millisecond,
		Requests:       reqs,
		MaxOutstanding: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Errorf("report = %+v; want shed arrivals with a 1-slot cap at 200 rps", rep)
	}
	if rep.Completed+rep.Rejected+rep.Errors+rep.Shed != rep.Offered {
		t.Error("accounting does not add up under shedding")
	}
}

// TestRunValidation: the option contract is enforced.
func TestRunValidation(t *testing.T) {
	c := benchTarget(t)
	cases := []bench.Options{
		{RPS: 10, Duration: time.Second, Requests: workload(1)},   // no client
		{Client: c, Duration: time.Second, Requests: workload(1)}, // no rps
		{Client: c, RPS: 10, Requests: workload(1)},               // no duration
		{Client: c, RPS: 10, Duration: time.Second},               // no workload
	}
	for i, opts := range cases {
		if _, err := bench.Run(context.Background(), opts); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}
