// Package bench is an open-loop load generator for the v1 analysis
// API. Open loop means arrivals follow a fixed schedule (the target
// RPS) regardless of how fast responses come back — the generator
// never self-throttles to the service's pace, so queueing delay shows
// up in the measured latency instead of silently stretching the run
// (the coordinated-omission trap closed-loop harnesses fall into).
// Arrivals that cannot start because the outstanding-request cap is
// exhausted are counted as shed, not blocked: a shed arrival is the
// honest record that the target rate exceeded what the stack absorbed.
package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"localalias/internal/client"
	"localalias/internal/obs"
	"localalias/internal/service"
)

// DefaultMaxOutstanding caps concurrently in-flight requests. The cap
// bounds generator-side resources (goroutines, sockets); it is far
// above the daemon's own admission queue, so the service's 429s are
// observed, not masked.
const DefaultMaxOutstanding = 256

// latencyBounds resolve sub-millisecond analysis latencies: cache
// hits serve in tens of microseconds, cold analyses in the low
// milliseconds, and the tail under overload reaches seconds.
var latencyBounds = []time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond,
	500 * time.Microsecond, 1 * time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, 1 * time.Second, 2500 * time.Millisecond,
	5 * time.Second, 10 * time.Second,
}

// Options configures one load-generation run.
type Options struct {
	// Client submits the requests (required). Point it at a gateway or
	// a single daemon; the generator cannot tell the difference — that
	// is the point of the shared v1 client.
	Client *client.Client
	// RPS is the target arrival rate (required, > 0).
	RPS float64
	// Duration is how long arrivals are scheduled (required, > 0).
	// In-flight requests at the deadline are drained and counted.
	Duration time.Duration
	// Requests is the workload, replayed round-robin (required,
	// non-empty). Submit the same slice twice (or set Warm) to measure
	// the cache-hit path.
	Requests []service.AnalyzeRequest
	// MaxOutstanding caps in-flight requests (0 = DefaultMaxOutstanding).
	MaxOutstanding int
	// Warm, when set, submits every distinct request once (one batch,
	// untimed) before the clock starts, so the timed run measures the
	// warm cache-affinity path rather than first-touch analysis cost.
	Warm bool
	// Progress, when non-nil, receives one status line per second.
	Progress func(string)
}

// Report is the outcome of a run, shaped for direct embedding in
// benchmark artifacts (all fields snake_case, latencies in
// milliseconds).
type Report struct {
	// TargetRPS and DurationSeconds echo the configuration.
	TargetRPS       float64 `json:"target_rps"`
	DurationSeconds float64 `json:"duration_seconds"`

	// Offered counts scheduled arrivals; Shed is the subset that found
	// the outstanding cap exhausted and was dropped by the generator.
	Offered int `json:"offered"`
	Shed    int `json:"shed,omitempty"`
	// Completed answered 200; Rejected answered a well-formed API error
	// (429/503 under overload); Errors is transport-level failures.
	Completed int `json:"completed"`
	Rejected  int `json:"rejected,omitempty"`
	Errors    int `json:"errors,omitempty"`
	// ErrorsByCode splits every non-200 outcome by its wire error code
	// (queue_full, backend_unavailable, draining, ...), with transport
	// failures under "transport" — so a run against a gateway shows
	// whether pressure came from edge admission or from the backends.
	ErrorsByCode map[string]int `json:"errors_by_code,omitempty"`

	// AchievedRPS is completed responses per second of run time.
	AchievedRPS float64 `json:"achieved_rps"`

	// CacheHits/CacheMisses split the completed responses by the
	// X-Lna-Cache disposition; HitRate is hits over completed.
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`

	// Latency quantiles over completed responses only (a rejected
	// request answers fast; mixing it in would flatter the tail).
	LatencyMsP50  float64 `json:"latency_ms_p50"`
	LatencyMsP95  float64 `json:"latency_ms_p95"`
	LatencyMsP99  float64 `json:"latency_ms_p99"`
	LatencyMsMean float64 `json:"latency_ms_mean"`
	LatencyMsMax  float64 `json:"latency_ms_max"`
}

func ms(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// round3 keeps artifact diffs readable without losing microsecond
// resolution.
func round3(f float64) float64 {
	return float64(int64(f*1000+0.5)) / 1000
}

// Run executes one open-loop run and reports the aggregate. The
// context cancels the run early; requests already in flight are still
// drained and counted.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.Client == nil {
		return nil, errors.New("bench: Options.Client is required")
	}
	if opts.RPS <= 0 {
		return nil, fmt.Errorf("bench: target RPS must be positive, got %v", opts.RPS)
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("bench: duration must be positive, got %v", opts.Duration)
	}
	if len(opts.Requests) == 0 {
		return nil, errors.New("bench: no requests to replay")
	}
	maxOut := opts.MaxOutstanding
	if maxOut <= 0 {
		maxOut = DefaultMaxOutstanding
	}

	if opts.Warm {
		reqs := opts.Requests
		if _, _, err := opts.Client.Batch(ctx, reqs); err != nil {
			return nil, fmt.Errorf("bench: warm pass failed: %w", err)
		}
	}

	var (
		hist                        = obs.NewHistogram(latencyBounds)
		completed, rejected, failed atomic.Int64
		hits, misses                atomic.Int64
		sem                         = make(chan struct{}, maxOut)
		wg                          sync.WaitGroup
		codeMu                      sync.Mutex
		byCode                      = make(map[string]int)
	)
	countCode := func(code string) {
		codeMu.Lock()
		byCode[code]++
		codeMu.Unlock()
	}
	fire := func(req *service.AnalyzeRequest) {
		defer wg.Done()
		defer func() { <-sem }()
		t0 := time.Now()
		_, meta, err := opts.Client.AnalyzeRaw(ctx, req)
		elapsed := time.Since(t0)
		switch {
		case err == nil:
			hist.Observe(elapsed)
			completed.Add(1)
			if meta.Cache == "hit" {
				hits.Add(1)
			} else {
				misses.Add(1)
			}
		default:
			var apiErr *client.APIError
			if errors.As(err, &apiErr) {
				rejected.Add(1)
				code := "unknown"
				if apiErr.Err != nil && apiErr.Err.Code != "" {
					code = apiErr.Err.Code
				}
				countCode(code)
			} else {
				failed.Add(1)
				countCode("transport")
			}
		}
	}

	interval := time.Duration(float64(time.Second) / opts.RPS)
	start := time.Now()
	offered, shed := 0, 0
	lastProgress := start
	// Fixed-schedule arrivals: the i-th request is due at start +
	// i*interval, independent of how long earlier requests take.
	for i := 0; ; i++ {
		due := start.Add(time.Duration(i) * interval)
		if due.Sub(start) >= opts.Duration {
			break
		}
		if wait := time.Until(due); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				goto done
			}
		} else if ctx.Err() != nil {
			goto done
		}
		offered++
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go fire(&opts.Requests[i%len(opts.Requests)])
		default:
			shed++
		}
		if opts.Progress != nil && time.Since(lastProgress) >= time.Second {
			lastProgress = time.Now()
			opts.Progress(fmt.Sprintf("t=%v offered=%d completed=%d shed=%d",
				time.Since(start).Round(time.Second), offered, completed.Load(), shed))
		}
	}
done:
	wg.Wait()
	elapsed := time.Since(start)

	snap := hist.Snapshot()
	rep := &Report{
		TargetRPS:       opts.RPS,
		DurationSeconds: round3(elapsed.Seconds()),
		Offered:         offered,
		Shed:            shed,
		Completed:       int(completed.Load()),
		Rejected:        int(rejected.Load()),
		Errors:          int(failed.Load()),
		CacheHits:       int(hits.Load()),
		CacheMisses:     int(misses.Load()),
		LatencyMsP50:    round3(ms(snap.Quantile(0.50))),
		LatencyMsP95:    round3(ms(snap.Quantile(0.95))),
		LatencyMsP99:    round3(ms(snap.Quantile(0.99))),
		LatencyMsMean:   round3(ms(snap.Mean())),
		LatencyMsMax:    round3(ms(snap.Max)),
	}
	if elapsed > 0 {
		rep.AchievedRPS = round3(float64(rep.Completed) / elapsed.Seconds())
	}
	if rep.Completed > 0 {
		rep.HitRate = round3(float64(rep.CacheHits) / float64(rep.Completed))
	}
	if len(byCode) > 0 {
		rep.ErrorsByCode = byCode
	}
	return rep, nil
}
