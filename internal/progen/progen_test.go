package progen

import (
	"strings"
	"testing"

	"localalias/internal/parser"
	"localalias/internal/source"
	"localalias/internal/types"
)

func TestGenerateDeterministic(t *testing.T) {
	if Generate(42) != Generate(42) {
		t.Error("same seed must generate the same program")
	}
	if Generate(1) == Generate(2) {
		t.Error("different seeds should generate different programs")
	}
}

func TestGenerateWellTyped(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		src := Generate(seed)
		var diags source.Diagnostics
		prog := parser.Parse("gen.mc", src, &diags)
		if diags.HasErrors() {
			t.Fatalf("seed %d: parse errors:\n%s\n%s", seed, diags.String(), src)
		}
		types.Check(prog, &diags)
		if diags.HasErrors() {
			t.Fatalf("seed %d: type errors:\n%s\n%s", seed, diags.String(), src)
		}
	}
}

func TestGenerateUsesTheInterestingForms(t *testing.T) {
	// Across a seed range, the generator must exercise restrict
	// scopes, aliases, stores and conditionals.
	var all strings.Builder
	for seed := int64(0); seed < 50; seed++ {
		all.WriteString(Generate(seed))
	}
	s := all.String()
	for _, form := range []string{"restrict ", "new ", "if (", "} else {", "*x"} {
		if !strings.Contains(s, form) {
			t.Errorf("generator never produced %q", form)
		}
	}
}
