// Package progen generates random well-typed MiniC programs over the
// paper's core fragment (new, deref, assign, let, restrict, explicit
// scopes, conditionals). The programs are well-typed by construction
// but deliberately create and use aliases inside restrict scopes at
// random, so they exercise both the accepting and the rejecting paths
// of the checker.
//
// It backs three validations:
//
//   - the empirical Theorem 1 test (accepted programs never evaluate
//     to err; internal/interp),
//   - the agreement test between the O(kn) Figure 5 checker and the
//     least-solution solver (internal/restrict),
//   - randomized benchmarks.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Generate produces one random program's source for the seed. The
// program declares "fun main(): int".
func Generate(seed int64) string {
	g := &gen{r: rand.New(rand.NewSource(seed))}
	g.line("fun main(): int {")
	g.indent++
	env := g.stmts(nil, 3, 4+g.r.Intn(6))
	g.line("return %s;", g.intExpr(env, 1))
	g.indent--
	g.line("}")
	return g.b.String()
}

type gen struct {
	r       *rand.Rand
	nextVar int
	b       strings.Builder
	indent  int
}

type genVar struct {
	name  string
	isRef bool
}

func (g *gen) line(format string, args ...any) {
	g.b.WriteString(strings.Repeat("    ", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) fresh() string {
	g.nextVar++
	return fmt.Sprintf("x%d", g.nextVar)
}

func filterVars(env []genVar, refs bool) []genVar {
	var out []genVar
	for _, v := range env {
		if v.isRef == refs {
			out = append(out, v)
		}
	}
	return out
}

// intExpr produces an int-valued expression over env.
func (g *gen) intExpr(env []genVar, depth int) string {
	refs := filterVars(env, true)
	ints := filterVars(env, false)
	for {
		switch g.r.Intn(5) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(100))
		case 1:
			if len(ints) > 0 {
				return ints[g.r.Intn(len(ints))].name
			}
		case 2:
			if len(refs) > 0 {
				return "*" + refs[g.r.Intn(len(refs))].name
			}
		case 3:
			if depth > 0 {
				op := []string{"+", "-", "*"}[g.r.Intn(3)]
				return fmt.Sprintf("(%s %s %s)",
					g.intExpr(env, depth-1), op, g.intExpr(env, depth-1))
			}
		case 4:
			if depth > 0 {
				return fmt.Sprintf("(%s < %s)", g.intExpr(env, depth-1), g.intExpr(env, depth-1))
			}
		}
	}
}

// stmts emits a statement list, returning the extended environment.
func (g *gen) stmts(env []genVar, depth, budget int) []genVar {
	for i := 0; i < budget; i++ {
		env = g.stmt(env, depth)
	}
	return env
}

func (g *gen) stmt(env []genVar, depth int) []genVar {
	refs := filterVars(env, true)
	switch g.r.Intn(8) {
	case 0: // new allocation
		v := g.fresh()
		g.line("let %s = new %s;", v, g.intExpr(env, 1))
		return append(env, genVar{v, true})
	case 1: // alias copy
		if len(refs) > 0 {
			v := g.fresh()
			g.line("let %s = %s;", v, refs[g.r.Intn(len(refs))].name)
			return append(env, genVar{v, true})
		}
	case 2: // int binding
		v := g.fresh()
		g.line("let %s = %s;", v, g.intExpr(env, 1))
		return append(env, genVar{v, false})
	case 3: // store through a pointer
		if len(refs) > 0 {
			g.line("*%s = %s;", refs[g.r.Intn(len(refs))].name, g.intExpr(env, 1))
		}
	case 4: // restrict scope: the interesting case
		if len(refs) > 0 && depth > 0 {
			v := g.fresh()
			src := refs[g.r.Intn(len(refs))]
			g.line("restrict %s = %s {", v, src.name)
			g.indent++
			// Inside, the whole outer env stays visible — including
			// aliases of src, whose random use produces programs the
			// checker must reject.
			g.stmts(append(env, genVar{v, true}), depth-1, 1+g.r.Intn(3))
			g.indent--
			g.line("}")
		}
	case 5: // explicit let scope
		if len(refs) > 0 && depth > 0 {
			v := g.fresh()
			g.line("let %s = %s {", v, refs[g.r.Intn(len(refs))].name)
			g.indent++
			g.stmts(append(env, genVar{v, true}), depth-1, 1+g.r.Intn(2))
			g.indent--
			g.line("}")
		}
	case 6: // conditional
		if depth > 0 {
			g.line("if (%s) {", g.intExpr(env, 1))
			g.indent++
			g.stmts(env, depth-1, 1+g.r.Intn(2))
			g.indent--
			g.line("} else {")
			g.indent++
			g.stmts(env, depth-1, 1+g.r.Intn(2))
			g.indent--
			g.line("}")
		}
	case 7: // read something
		if len(refs) > 0 {
			v := g.fresh()
			g.line("let %s = *%s;", v, refs[g.r.Intn(len(refs))].name)
			return append(env, genVar{v, false})
		}
	}
	return env
}
