// Package solve resolves effect constraint systems.
//
// It provides the two algorithms of the paper:
//
//   - Check: the O(kn) satisfiability test of Section 4. The
//     normal-form constraints are viewed as a directed graph
//     (location sources, effect-variable nodes, and in-degree-2
//     intersection nodes); each disinclusion ρ ∉ ε is tested with the
//     marked depth-first search of Figure 5 (CheckSat).
//
//   - Solve: the least-solution worklist algorithm with conditional
//     constraints used by restrict inference (Section 5, O(n²)) and
//     confine inference (Section 6). Atoms are propagated to a
//     fixpoint; when a conditional's trigger becomes true its actions
//     run (unifying locations, adding inclusions or atoms), and
//     propagation resumes until no conditional fires and no atom
//     moves.
//
// Both algorithms run over dense integer indices: effect variables
// and abstract locations are already dense int32s, atoms are interned
// into dense IDs (effects.Interner), solution and gate sets are
// bitsets over those IDs, and the propagation graph's out-edges are
// stored in CSR (compressed-sparse-row) adjacency built once per
// Solve/NewChecker. See docs/ALGORITHMS.md, "Dense solver
// representation".
package solve

import (
	"localalias/internal/effects"
	"localalias/internal/locs"
)

// target is one out-edge of an effect-variable node.
type target struct {
	// kind selects the edge destination.
	kind targetKind
	// idx is a variable index (toVar) or an intersection-node index
	// (toLeft/toRight).
	idx int32
}

type targetKind uint8

const (
	toVar targetKind = iota
	toLeft
	toRight
)

// graph is the shared constraint-graph skeleton built from a
// normalized system. Out-edges are in CSR form: the edges of variable
// v are edges[edgeStart[v]:edgeStart[v+1]], in the order the
// normalized constraints produced them (per-variable edge order is
// what keeps propagation — and hence conditional firing order —
// deterministic).
type graph struct {
	sys   *effects.System
	ls    *locs.Store
	norms []effects.Norm

	nvar      int
	edgeStart []int32
	edges     []target
	// seeds[v] lists atoms directly included in v.
	seeds [][]effects.Atom
	// inter[i] is the i-th intersection node.
	inter []inode
}

// inode is an intersection node: atoms arriving on the left are
// forwarded to Out when their location has been seen on the right.
// (On the paper's plain location sets this is exactly the in-degree-2
// Count(I)==2 behaviour of Figure 5.)
type inode struct {
	Out effects.Var
	// leftSeeds/rightSeeds are atoms wired directly into a side.
	leftSeeds  []effects.Atom
	rightSeeds []effects.Atom
}

// newGraph normalizes sys and builds the skeleton. A non-nil scratch
// supplies recycled buffers for every build-time structure (normal
// forms, seed rows, CSR arrays, intersection nodes); the Checker and
// the reference solver pass nil, since they retain the graph beyond
// the scratch's checkout.
func newGraph(sys *effects.System, sc *scratch) *graph {
	g := &graph{sys: sys, ls: sys.Locs}
	if sc == nil {
		g.norms = sys.Normalize()
	} else {
		g.norms, sc.normWork = sys.NormalizeInto(sc.norms, sc.normWork)
	}
	// Normalize may create fresh variables, so size after.
	g.nvar = sys.NumVars()

	var degree, next []int32
	if sc == nil {
		g.seeds = make([][]effects.Atom, g.nvar)
		degree = make([]int32, g.nvar+1)
	} else {
		g.seeds = takeRows(&sc.seeds, g.nvar)
		degree = takeSlice(&sc.degree, g.nvar+1)
		g.inter = sc.takeInter()
	}

	// CSR in two passes: count each variable's out-degree, prefix-sum
	// into edgeStart, then fill slots in norm order.
	for _, n := range g.norms {
		if !n.Inter {
			if !n.Left.IsAtom {
				degree[n.Left.V]++
			}
			continue
		}
		if !n.Left.IsAtom {
			degree[n.Left.V]++
		}
		if !n.Right.IsAtom {
			degree[n.Right.V]++
		}
	}
	if sc == nil {
		g.edgeStart = make([]int32, g.nvar+1)
	} else {
		g.edgeStart = takeSlice(&sc.edgeStart, g.nvar+1)
	}
	var total int32
	for v := 0; v < g.nvar; v++ {
		g.edgeStart[v] = total
		total += degree[v]
	}
	g.edgeStart[g.nvar] = total
	if sc == nil {
		g.edges = make([]target, total)
		next = make([]int32, g.nvar)
	} else {
		g.edges = takeSlice(&sc.edges, int(total))
		next = takeSlice(&sc.next, g.nvar)
	}
	copy(next, g.edgeStart[:g.nvar])
	addEdge := func(from effects.Var, t target) {
		g.edges[next[from]] = t
		next[from]++
	}
	for _, n := range g.norms {
		if !n.Inter {
			if n.Left.IsAtom {
				g.seeds[n.V] = append(g.seeds[n.V], n.Left.A)
			} else {
				addEdge(n.Left.V, target{kind: toVar, idx: int32(n.V)})
			}
			continue
		}
		i := int32(len(g.inter))
		in := g.addInode(n.V)
		if n.Left.IsAtom {
			in.leftSeeds = append(in.leftSeeds, n.Left.A)
		} else {
			addEdge(n.Left.V, target{kind: toLeft, idx: i})
		}
		if n.Right.IsAtom {
			in.rightSeeds = append(in.rightSeeds, n.Right.A)
		} else {
			addEdge(n.Right.V, target{kind: toRight, idx: i})
		}
	}
	if sc != nil {
		// Capture append growth so the scratch keeps the high-water
		// backing for the next solve.
		sc.norms = g.norms
		sc.inter = g.inter
	}
	return g
}

// addInode appends an intersection node, reusing a previously carved
// slot — and its seed rows' capacity — when the backing allows.
func (g *graph) addInode(out effects.Var) *inode {
	if len(g.inter) < cap(g.inter) {
		g.inter = g.inter[:len(g.inter)+1]
		in := &g.inter[len(g.inter)-1]
		in.Out = out
		in.leftSeeds = in.leftSeeds[:0]
		in.rightSeeds = in.rightSeeds[:0]
		return in
	}
	g.inter = append(g.inter, inode{Out: out})
	return &g.inter[len(g.inter)-1]
}

// takeInter hands out the recycled inode backing, truncated; addInode
// re-extends it in place so each node's seed rows keep their caps.
func (sc *scratch) takeInter() []inode {
	return sc.inter[:0]
}

// outEdges returns v's static out-edges (CSR row). Edges added by
// conditional constraints at solve time live in the solver's overlay,
// not here: the skeleton is immutable once built, so a Checker and a
// solver can share it.
func (g *graph) outEdges(v int32) []target {
	return g.edges[g.edgeStart[v]:g.edgeStart[v+1]]
}

// Size returns a node+edge count used by complexity benchmarks.
func (g *graph) Size() int {
	n := g.nvar + len(g.inter) + len(g.edges)
	for _, v := range g.seeds {
		n += len(v)
	}
	return n
}
