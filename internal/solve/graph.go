// Package solve resolves effect constraint systems.
//
// It provides the two algorithms of the paper:
//
//   - Check: the O(kn) satisfiability test of Section 4. The
//     normal-form constraints are viewed as a directed graph
//     (location sources, effect-variable nodes, and in-degree-2
//     intersection nodes); each disinclusion ρ ∉ ε is tested with the
//     marked depth-first search of Figure 5 (CheckSat).
//
//   - Solve: the least-solution worklist algorithm with conditional
//     constraints used by restrict inference (Section 5, O(n²)) and
//     confine inference (Section 6). Atoms are propagated to a
//     fixpoint; when a conditional's trigger becomes true its actions
//     run (unifying locations, adding inclusions or atoms), and
//     propagation resumes until no conditional fires and no atom
//     moves.
package solve

import (
	"localalias/internal/effects"
	"localalias/internal/locs"
)

// target is one out-edge of an effect-variable node.
type target struct {
	// kind selects the edge destination.
	kind targetKind
	// idx is a variable index (toVar) or an intersection-node index
	// (toLeft/toRight).
	idx int32
}

type targetKind uint8

const (
	toVar targetKind = iota
	toLeft
	toRight
)

// graph is the shared constraint-graph skeleton built from a
// normalized system.
type graph struct {
	sys   *effects.System
	ls    *locs.Store
	norms []effects.Norm

	nvar int
	// out[v] lists v's out-edges.
	out [][]target
	// seeds[v] lists atoms directly included in v.
	seeds [][]effects.Atom
	// inter[i] is the i-th intersection node.
	inter []*inode
}

// inode is an intersection node: atoms arriving on the left are
// forwarded to Out when their location has been seen on the right.
// (On the paper's plain location sets this is exactly the in-degree-2
// Count(I)==2 behaviour of Figure 5.)
type inode struct {
	Out effects.Var
	// leftSeeds/rightSeeds are atoms wired directly into a side.
	leftSeeds  []effects.Atom
	rightSeeds []effects.Atom
}

// newGraph normalizes sys and builds the skeleton.
func newGraph(sys *effects.System) *graph {
	g := &graph{
		sys:   sys,
		ls:    sys.Locs,
		norms: sys.Normalize(),
	}
	// Normalize may create fresh variables, so size after.
	g.nvar = sys.NumVars()
	g.out = make([][]target, g.nvar)
	g.seeds = make([][]effects.Atom, g.nvar)
	for _, n := range g.norms {
		if !n.Inter {
			if n.Left.IsAtom {
				g.seeds[n.V] = append(g.seeds[n.V], n.Left.A)
			} else {
				g.addEdge(n.Left.V, target{kind: toVar, idx: int32(n.V)})
			}
			continue
		}
		i := int32(len(g.inter))
		in := &inode{Out: n.V}
		g.inter = append(g.inter, in)
		if n.Left.IsAtom {
			in.leftSeeds = append(in.leftSeeds, n.Left.A)
		} else {
			g.addEdge(n.Left.V, target{kind: toLeft, idx: i})
		}
		if n.Right.IsAtom {
			in.rightSeeds = append(in.rightSeeds, n.Right.A)
		} else {
			g.addEdge(n.Right.V, target{kind: toRight, idx: i})
		}
	}
	return g
}

func (g *graph) addEdge(from effects.Var, t target) {
	g.out[from] = append(g.out[from], t)
}

// Size returns a node+edge count used by complexity benchmarks.
func (g *graph) Size() int {
	n := g.nvar + len(g.inter)
	for _, es := range g.out {
		n += len(es)
	}
	for _, v := range g.seeds {
		n += len(v)
	}
	return n
}
