package solve

import (
	"fmt"

	"localalias/internal/bitset"
	"localalias/internal/effects"
	"localalias/internal/source"
)

// Violation reports one failed check (a disinclusion ρ ∉ ε, a
// kind-absence check, or a read/write pair check).
type Violation struct {
	Site   source.Span
	What   string // the side condition that failed, for diagnostics
	Detail string // mechanical detail (which location/atoms)
}

func (v Violation) String() string {
	if v.Detail == "" {
		return v.What
	}
	return v.What + " (" + v.Detail + ")"
}

// Checker runs Figure 5's CHECK-SAT over a constraint graph. It is
// reusable across queries: the marks are epoch-stamped so each query
// costs O(nodes reached), giving the paper's O(kn) total for k
// checks.
type Checker struct {
	g *graph

	epoch    int
	varMark  []int // epoch when the var node was reached
	leftMark []int // epoch when the inode's left side was reached
	rightMK  []int // epoch when the inode's right side was reached

	reverseAdj // built on demand for the backward search
}

// NewChecker builds the constraint graph for sys (normalizing its
// inclusions) and returns a Checker. Conditional constraints are not
// interpreted here — checking per Section 4 applies to fully
// annotated programs; use Solve for inference.
func NewChecker(sys *effects.System) *Checker {
	g := newGraph(sys, nil)
	return &Checker{
		g:        g,
		varMark:  make([]int, g.nvar),
		leftMark: make([]int, len(g.inter)),
		rightMK:  make([]int, len(g.inter)),
	}
}

// GraphSize returns the node+edge count (for benchmarks).
func (c *Checker) GraphSize() int { return c.g.Size() }

// Check tests every disinclusion of the system, returning the
// violations in generation order.
func Check(sys *effects.System) []Violation {
	c := NewChecker(sys)
	var out []Violation
	for _, ni := range sys.NotIns {
		if !c.Sat(ni) {
			out = append(out, Violation{
				Site:   ni.Site,
				What:   ni.What,
				Detail: fmt.Sprintf("ρ%d (%s) reaches %s", ni.Loc, sys.Locs.Name(ni.Loc), sys.VarName(ni.V)),
			})
		}
	}
	return out
}

// Sat reports whether the single disinclusion ni holds in the least
// solution, i.e. whether ni.Loc does NOT reach ni.V. This is the
// CHECK-SAT algorithm of Figure 5: a marked search from the location,
// where an intersection node forwards only once both of its sides
// have been reached (Count(I) == 2 in the paper's formulation).
func (c *Checker) Sat(ni effects.NotIn) bool {
	c.epoch++
	g := c.g
	rho := g.ls.Find(ni.Loc)
	goal := ni.V

	var work []int32 // variable node worklist
	pushVar := func(v effects.Var) {
		if c.varMark[v] != c.epoch {
			c.varMark[v] = c.epoch
			work = append(work, int32(v))
		}
	}
	// reachInode marks one side of an intersection node; when both
	// sides are marked the node's output becomes reachable.
	reachInode := func(i int32, left bool) {
		if left {
			if c.leftMark[i] == c.epoch {
				return
			}
			c.leftMark[i] = c.epoch
		} else {
			if c.rightMK[i] == c.epoch {
				return
			}
			c.rightMK[i] = c.epoch
		}
		if c.leftMark[i] == c.epoch && c.rightMK[i] == c.epoch {
			pushVar(g.inter[i].Out)
		}
	}

	// Seed: every constraint {a} ⊆ ε (or wired into an inode side)
	// with loc(a) = ρ is an initial reach.
	for v := 0; v < g.nvar; v++ {
		for _, a := range g.seeds[v] {
			if g.ls.Find(a.Loc) == rho {
				pushVar(effects.Var(v))
				break
			}
		}
	}
	for i := range g.inter {
		for _, a := range g.inter[i].leftSeeds {
			if g.ls.Find(a.Loc) == rho {
				reachInode(int32(i), true)
				break
			}
		}
		for _, a := range g.inter[i].rightSeeds {
			if g.ls.Find(a.Loc) == rho {
				reachInode(int32(i), false)
				break
			}
		}
	}

	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		if effects.Var(v) == goal {
			return false // unsatisfiable: ρ reaches ε
		}
		for _, t := range g.outEdges(v) {
			switch t.kind {
			case toVar:
				pushVar(effects.Var(t.idx))
			case toLeft:
				reachInode(t.idx, true)
			case toRight:
				reachInode(t.idx, false)
			}
		}
	}
	return true
}

// ReachableLocs returns the set of source locations (canonical) that
// can reach v, over-approximated by a reverse search that passes
// through intersection nodes unconditionally. This is the backward
// search of Section 6.2: because the region of the graph behind a
// confine's effect variable is typically small, prefiltering with
// this set and then confirming each candidate with Sat is faster in
// practice than computing full forward reachability for every
// location.
func (c *Checker) ReachableLocs(v effects.Var) *bitset.Set {
	g := c.g
	// Build the reverse adjacency lazily once.
	if c.revEdges == nil {
		c.buildReverse()
	}
	var seen, iseen, out bitset.Set
	var stack []int32
	seen.Add(int(v))
	stack = append(stack, int32(v))
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.seeds[n] {
			out.Add(int(g.ls.Find(a.Loc)))
		}
		for _, p := range c.revVarEdges(n) {
			if seen.Add(int(p)) {
				stack = append(stack, p)
			}
		}
		for _, i := range c.revInode[n] {
			if !iseen.Add(int(i)) {
				continue
			}
			for _, a := range g.inter[i].leftSeeds {
				out.Add(int(g.ls.Find(a.Loc)))
			}
			for _, a := range g.inter[i].rightSeeds {
				out.Add(int(g.ls.Find(a.Loc)))
			}
			for _, p := range c.revIntoInode[i] {
				if seen.Add(int(p)) {
					stack = append(stack, p)
				}
			}
		}
	}
	return &out
}

// SatBackward is Sat with the Section 6.2 prefilter: if the location
// cannot even reach v in the unconditional reverse approximation, the
// constraint is satisfiable without a forward search.
func (c *Checker) SatBackward(ni effects.NotIn) bool {
	if !c.ReachableLocs(ni.V).Has(int(c.g.ls.Find(ni.Loc))) {
		return true
	}
	return c.Sat(ni)
}

// reverse adjacency (built on demand):
//
//	revStart/revEdges   CSR: variables with an edge into v
//	revInode[v]       = inodes whose output feeds v
//	revIntoInode[i]   = variables feeding either side of inode i
type reverseAdj struct {
	revStart     []int32
	revEdges     []int32
	revInode     [][]int32
	revIntoInode [][]int32
}

func (c *Checker) revVarEdges(v int32) []int32 {
	return c.revEdges[c.revStart[v]:c.revStart[v+1]]
}

func (c *Checker) buildReverse() {
	g := c.g
	// Reverse var→var edges in CSR form, by counting then filling.
	degree := make([]int32, g.nvar+1)
	for _, t := range g.edges {
		if t.kind == toVar {
			degree[t.idx]++
		}
	}
	c.revStart = make([]int32, g.nvar+1)
	var total int32
	for v := 0; v < g.nvar; v++ {
		c.revStart[v] = total
		total += degree[v]
	}
	c.revStart[g.nvar] = total
	c.revEdges = make([]int32, total)
	next := make([]int32, g.nvar)
	copy(next, c.revStart[:g.nvar])

	c.revInode = make([][]int32, g.nvar)
	c.revIntoInode = make([][]int32, len(g.inter))
	for v := int32(0); v < int32(g.nvar); v++ {
		for _, t := range g.outEdges(v) {
			switch t.kind {
			case toVar:
				c.revEdges[next[t.idx]] = v
				next[t.idx]++
			case toLeft, toRight:
				c.revIntoInode[t.idx] = append(c.revIntoInode[t.idx], v)
			}
		}
	}
	for i := range g.inter {
		out := g.inter[i].Out
		c.revInode[out] = append(c.revInode[out], int32(i))
	}
}
