package solve

import (
	"sync"
	"sync/atomic"

	"localalias/internal/bitset"
	"localalias/internal/effects"
	"localalias/internal/locs"
)

// This file owns the solver's storage recycling. A Solve allocates in
// two lifetimes:
//
//   - scratch: everything dead the moment Solve returns — the graph
//     build's buffers (normal forms, CSR arrays, seed rows), the
//     worklist, the watch index, intersection gate sets, and the
//     re-canonicalization buffers. One scratch is checked out per
//     Solve and returned before it exits.
//
//   - retained: what the Result keeps alive — the interner (accessors
//     translate IDs back to atoms through it) and the solution-set
//     arena. These ride in the Result until Result.Release hands them
//     back; callers that never Release simply let the GC take them.
//
// The split is what makes reuse safe: nothing in a live Result aliases
// a pooled scratch, so a daemon running solves back-to-back recycles
// the big allocations without use-after-free hazards, and Release is
// an optimization rather than an obligation.

// scratch is the per-solve recyclable state. All fields are
// lazily grown and retained at their high-water capacity.
type scratch struct {
	// Graph-build buffers (see newGraph).
	norms     []effects.Norm
	normWork  []effects.Incl
	seeds     [][]effects.Atom
	degree    []int32
	edgeStart []int32
	edges     []target
	next      []int32
	inter     []inode

	// Solver buffers (see solveSequential / attachScratch).
	queue      []qitem
	scratchBuf []int32
	staleBuf   []effects.ID
	losers     []locs.Loc
	idsByLoc   [][]effects.ID
	pending    []bool
	watch      [][]int32
	leftBuf    bitset.ArenaBuf
	right      []bitset.Set
}

// retained is the storage a Result keeps until Release.
type retained struct {
	in      *effects.Interner
	setsBuf bitset.ArenaBuf
}

var (
	scratchPool  = sync.Pool{New: func() any { return new(scratch) }}
	retainedPool = sync.Pool{New: func() any { return new(retained) }}
	internerPool = sync.Pool{New: func() any { return effects.NewInterner() }}

	poolingOff atomic.Bool
)

// SetPooling toggles solver storage reuse and reports the previous
// setting. Disabling makes every Solve allocate fresh buffers and
// turns Release into a plain drop — the pre-pooling behaviour. The
// experiments driver flips this to measure the pooled steady state
// against the allocate-per-solve baseline inside one process;
// production code leaves pooling on (the default).
func SetPooling(on bool) (prev bool) { return !poolingOff.Swap(!on) }

func getScratch() *scratch {
	if poolingOff.Load() {
		return new(scratch)
	}
	return scratchPool.Get().(*scratch)
}

func putScratch(sc *scratch) {
	if poolingOff.Load() {
		return
	}
	scratchPool.Put(sc)
}

func getRetained(nlocs int) *retained {
	if poolingOff.Load() {
		return &retained{in: effects.NewInternerSized(nlocs)}
	}
	r := retainedPool.Get().(*retained)
	if r.in == nil {
		r.in = effects.NewInternerSized(nlocs)
	} else {
		r.in.Reset()
	}
	return r
}

func putRetained(r *retained) {
	if poolingOff.Load() {
		return
	}
	retainedPool.Put(r)
}

func getInterner() *effects.Interner {
	if poolingOff.Load() {
		return effects.NewInterner()
	}
	in := internerPool.Get().(*effects.Interner)
	in.Reset()
	return in
}

func putInterner(in *effects.Interner) {
	if poolingOff.Load() {
		return
	}
	internerPool.Put(in)
}

// takeSlice returns buf resized to n with all elements zeroed,
// growing only when capacity is insufficient.
func takeSlice[T any](buf *[]T, n int) []T {
	s := *buf
	if cap(s) < n {
		s = make([]T, n)
	} else {
		s = s[:n]
		clear(s)
	}
	*buf = s
	return s
}

// takeRows returns buf resized to n rows, each truncated to length
// zero with its capacity kept — so the per-row appends of the next
// solve reuse the previous solve's row storage. Rows hidden beyond a
// shorter take survive in the backing array and come back on a later,
// larger take.
func takeRows[T any](buf *[][]T, n int) [][]T {
	s := *buf
	if cap(s) < n {
		grown := make([][]T, n)
		copy(grown, s[:cap(s)])
		s = grown
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	*buf = s
	return s
}

// takeRight returns the right-set array sized to n with every set
// emptied in place (bitset capacity kept).
func (sc *scratch) takeRight(n int) []bitset.Set {
	s := sc.right
	if cap(s) < n {
		grown := make([]bitset.Set, n)
		copy(grown, s[:cap(s)])
		s = grown
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i].Clear()
	}
	sc.right = s
	return s
}

func (sc *scratch) takeIDsByLoc(n int) [][]effects.ID {
	return takeRows(&sc.idsByLoc, n)
}

func (sc *scratch) takePending(n int) []bool {
	return takeSlice(&sc.pending, n)
}

func (sc *scratch) takeWatch(n int) [][]int32 {
	return takeRows(&sc.watch, n)
}

// reclaim copies a finished solver's buffers back into the scratch so
// mid-solve growth (a longer worklist, more stale IDs, organically
// grown right sets) raises the retained high-water marks.
func (sc *scratch) reclaim(s *solver) {
	sc.queue = s.queue[:0]
	sc.scratchBuf = s.scratch[:0]
	sc.staleBuf = s.staleBuf[:0]
	sc.losers = s.losers[:0]
	sc.idsByLoc = s.idsByLoc
	sc.watch = s.watch
	sc.pending = s.pending
	sc.right = s.right
}
