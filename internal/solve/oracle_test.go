package solve

// A brute-force oracle: the least solution of a (conditional-free)
// effect constraint system computed by naive round-robin iteration.
// testing/quick compares the worklist solver and the Figure 5 checker
// against it on random systems.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localalias/internal/effects"
	"localalias/internal/locs"
	"localalias/internal/source"
)

// bruteForce computes the least solution by iterating the normalized
// constraints until fixpoint, entirely independently of the solver's
// graph machinery.
func bruteForce(sys *effects.System) []map[effects.Atom]bool {
	norms := sys.Normalize()
	sets := make([]map[effects.Atom]bool, sys.NumVars())
	for i := range sets {
		sets[i] = map[effects.Atom]bool{}
	}
	canon := func(a effects.Atom) effects.Atom {
		a.Loc = sys.Locs.Find(a.Loc)
		return a
	}
	evalM := func(m effects.M) map[effects.Atom]bool {
		if m.IsAtom {
			return map[effects.Atom]bool{canon(m.A): true}
		}
		return sets[m.V]
	}
	for changed := true; changed; {
		changed = false
		for _, n := range norms {
			add := func(a effects.Atom) {
				a = canon(a)
				if !sets[n.V][a] {
					sets[n.V][a] = true
					changed = true
				}
			}
			if !n.Inter {
				for a := range evalM(n.Left) {
					add(a)
				}
				continue
			}
			right := map[locs.Loc]bool{}
			for a := range evalM(n.Right) {
				right[sys.Locs.Find(a.Loc)] = true
			}
			for a := range evalM(n.Left) {
				if right[sys.Locs.Find(a.Loc)] {
					add(a)
				}
			}
		}
	}
	return sets
}

// randomSystem builds a system from a seed: nv vars, nl locations,
// random seeds/edges/intersections, and a few pre-solve unifications.
func randomSystem(seed int64) (*effects.System, *locs.Store) {
	r := rand.New(rand.NewSource(seed))
	ls := locs.NewStore()
	sys := effects.NewSystem(ls)
	nv := 3 + r.Intn(10)
	nl := 2 + r.Intn(6)
	var vars []effects.Var
	for i := 0; i < nv; i++ {
		vars = append(vars, sys.Fresh("v"))
	}
	var rhos []locs.Loc
	for i := 0; i < nl; i++ {
		rhos = append(rhos, ls.Fresh("r"))
	}
	nc := 3 + r.Intn(15)
	for i := 0; i < nc; i++ {
		switch r.Intn(4) {
		case 0: // atom seed
			sys.AddAtom(effects.Atom{
				Kind: effects.Kind(r.Intn(4)),
				Loc:  rhos[r.Intn(nl)],
			}, vars[r.Intn(nv)])
		case 1: // var edge
			sys.AddVarIncl(vars[r.Intn(nv)], vars[r.Intn(nv)])
		case 2: // intersection of two vars
			sys.AddIncl(effects.Inter{
				L: effects.VarRef{V: vars[r.Intn(nv)]},
				R: effects.VarRef{V: vars[r.Intn(nv)]},
			}, vars[r.Intn(nv)])
		case 3: // union feeding a var
			sys.AddIncl(effects.Union{
				L: effects.AtomExpr{A: effects.Atom{Kind: effects.Read, Loc: rhos[r.Intn(nl)]}},
				R: effects.VarRef{V: vars[r.Intn(nv)]},
			}, vars[r.Intn(nv)])
		}
	}
	// A couple of location unifications before solving.
	for i := 0; i < r.Intn(3); i++ {
		ls.Unify(rhos[r.Intn(nl)], rhos[r.Intn(nl)])
	}
	return sys, ls
}

func TestSolveMatchesBruteForceQuick(t *testing.T) {
	prop := func(seed int64) bool {
		sys, ls := randomSystem(seed)
		want := bruteForce(sys)
		got := Solve(sys)
		for v := 0; v < sys.NumVars(); v++ {
			wantAtoms := map[effects.Atom]bool{}
			for a := range want[v] {
				a.Loc = ls.Find(a.Loc)
				wantAtoms[a] = true
			}
			gotAtoms := got.Atoms(effects.Var(v))
			if len(gotAtoms) != len(wantAtoms) {
				t.Logf("seed %d var %d: got %v want %v", seed, v, gotAtoms, wantAtoms)
				return false
			}
			for _, a := range gotAtoms {
				if !wantAtoms[a] {
					t.Logf("seed %d var %d: spurious %v", seed, v, a)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSatMatchesBruteForceQuick(t *testing.T) {
	// Figure 5's per-location reachability must agree with membership
	// in the brute-force least solution.
	prop := func(seed int64) bool {
		sys, ls := randomSystem(seed)
		want := bruteForce(sys)
		c := NewChecker(sys)
		for v := 0; v < sys.NumVars(); v++ {
			for l := locs.Loc(0); int(l) < ls.Len(); l++ {
				inSolution := false
				for a := range want[v] {
					if ls.Find(a.Loc) == ls.Find(l) {
						inSolution = true
						break
					}
				}
				sat := c.Sat(effects.NotIn{Loc: l, V: effects.Var(v), Site: source.NoSpan})
				if sat == inSolution {
					t.Logf("seed %d: var %d loc %d: Sat=%v but inSolution=%v",
						seed, v, l, sat, inSolution)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardAgreesWithForwardQuick(t *testing.T) {
	prop := func(seed int64) bool {
		sys, ls := randomSystem(seed)
		c := NewChecker(sys)
		for v := 0; v < sys.NumVars(); v++ {
			for l := locs.Loc(0); int(l) < ls.Len(); l++ {
				ni := effects.NotIn{Loc: l, V: effects.Var(v), Site: source.NoSpan}
				if c.Sat(ni) != c.SatBackward(ni) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
