package solve

import (
	"fmt"
	"testing"

	"localalias/internal/effects"
	"localalias/internal/locs"
	"localalias/internal/source"
)

// buildLayered constructs a layered constraint graph: width sources
// feeding depth layers of variables with cross edges and a sprinkle
// of intersections — a stand-in for the effect graphs real modules
// produce.
func buildLayered(width, depth int) (*effects.System, []effects.Var, []locs.Loc) {
	ls := locs.NewStore()
	sys := effects.NewSystem(ls)
	var rhos []locs.Loc
	for i := 0; i < width; i++ {
		rhos = append(rhos, ls.Fresh(fmt.Sprintf("r%d", i)))
	}
	prev := make([]effects.Var, width)
	for i := 0; i < width; i++ {
		prev[i] = sys.Fresh("l0")
		sys.AddAtom(effects.Atom{Kind: effects.Kind(i % 4), Loc: rhos[i]}, prev[i])
	}
	var last []effects.Var
	for d := 1; d < depth; d++ {
		cur := make([]effects.Var, width)
		for i := 0; i < width; i++ {
			cur[i] = sys.Fresh(fmt.Sprintf("l%d", d))
			sys.AddVarIncl(prev[i], cur[i])
			sys.AddVarIncl(prev[(i+1)%width], cur[i])
			if i%5 == 0 {
				sys.AddIncl(effects.Inter{
					L: effects.VarRef{V: prev[i]},
					R: effects.VarRef{V: prev[(i+2)%width]},
				}, cur[i])
			}
		}
		prev = cur
		last = cur
	}
	return sys, last, rhos
}

// BenchmarkCheckSatQuery measures the per-query cost of the Figure 5
// marked search (the O(n) factor of O(kn)).
func BenchmarkCheckSatQuery(b *testing.B) {
	for _, size := range []int{10, 40, 160} {
		sys, last, rhos := buildLayered(size, size)
		b.Run(fmt.Sprintf("width=%d", size), func(b *testing.B) {
			c := NewChecker(sys)
			b.ReportMetric(float64(c.GraphSize()), "graph-nodes+edges")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ni := effects.NotIn{
					Loc:  rhos[i%len(rhos)],
					V:    last[i%len(last)],
					Site: source.NoSpan,
				}
				c.Sat(ni)
			}
		})
	}
}

// BenchmarkSolveLayered measures full least-solution propagation.
func BenchmarkSolveLayered(b *testing.B) {
	for _, size := range []int{10, 40} {
		b.Run(fmt.Sprintf("width=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, _, _ := buildLayered(size, size)
				b.StartTimer()
				Solve(sys)
			}
		})
	}
}

// BenchmarkSolveWithConditionals measures the conditional-constraint
// worklist: a cascade of unifications each enabling the next.
func BenchmarkSolveWithConditionals(b *testing.B) {
	for _, n := range []int{50, 200} {
		b.Run(fmt.Sprintf("cascade=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ls := locs.NewStore()
				sys := effects.NewSystem(ls)
				e := sys.Fresh("e")
				rhos := make([]locs.Loc, n+1)
				for j := range rhos {
					rhos[j] = ls.Fresh("r")
				}
				sys.AddAtom(effects.Atom{Kind: effects.Read, Loc: rhos[0]}, e)
				// rho_j ∈ e ⇒ unify(rho_j, rho_j+1): each firing
				// enables the next.
				for j := 0; j < n; j++ {
					sys.AddCond(&effects.Cond{
						Trigger: effects.LocIn{Loc: rhos[j], V: e},
						Actions: []effects.Action{effects.ActUnify{A: rhos[j], B: rhos[j+1]}},
					})
				}
				b.StartTimer()
				r := Solve(sys)
				if len(r.Fired) != n {
					b.Fatalf("fired %d, want %d", len(r.Fired), n)
				}
			}
		})
	}
}
