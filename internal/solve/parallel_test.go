package solve_test

// Differential tests for the component-partitioned solver: SolveWorkers
// must be indistinguishable from the sequential Solve — not just
// set-equal but exactly equal in per-variable atom lists, violation
// diagnostics, and every Stats counter — and both must agree with the
// map-based reference solver. Solving mutates the location store, so
// each solver gets its own identically built system.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"localalias/internal/core"
	"localalias/internal/effects"
	"localalias/internal/faults"
	"localalias/internal/infer"
	"localalias/internal/locs"
	"localalias/internal/progen"
	"localalias/internal/solve"
)

// randomClusterSystem builds k independent random constraint clusters
// in one system — disjoint variables and locations per cluster, so the
// propagation graph has several connected components and the parallel
// path genuinely partitions.
func randomClusterSystem(seed int64, k int) *effects.System {
	ls := locs.NewStore()
	sys := effects.NewSystem(ls)
	for i := 0; i < k; i++ {
		r := rand.New(rand.NewSource(seed*1009 + int64(i)))
		buildRandomCondInto(sys, r)
	}
	return sys
}

// requireExactMatch asserts the parallel result is exactly the
// sequential result: identical atom lists per variable, identical
// violations (including diagnostic strings), identical stats.
func requireExactMatch(t *testing.T, label string,
	seqSys *effects.System, seq *solve.Result,
	parSys *effects.System, par *solve.Result) bool {
	t.Helper()
	if seqSys.NumVars() != parSys.NumVars() {
		t.Logf("%s: nondeterministic build: %d vs %d vars", label, seqSys.NumVars(), parSys.NumVars())
		return false
	}
	if seq.Stats != par.Stats {
		t.Logf("%s: stats differ\n sequential: %v\n parallel:   %v", label, seq.Stats, par.Stats)
		return false
	}
	for v := 0; v < seqSys.NumVars(); v++ {
		sa, pa := seq.Atoms(effects.Var(v)), par.Atoms(effects.Var(v))
		if !reflect.DeepEqual(sa, pa) {
			t.Logf("%s: var %d atoms differ\n sequential: %v\n parallel:   %v", label, v, sa, pa)
			return false
		}
	}
	sv, pv := seq.Violations(), par.Violations()
	if !reflect.DeepEqual(sv, pv) {
		t.Logf("%s: violations differ\n sequential: %v\n parallel:   %v", label, sv, pv)
		return false
	}
	sf, pf := firedSet(seqSys, seq.Fired), firedSet(parSys, par.Fired)
	if len(sf) != len(pf) {
		t.Logf("%s: fired %d vs %d conds", label, len(sf), len(pf))
		return false
	}
	for i := range sf {
		if !pf[i] {
			t.Logf("%s: cond %d fired only sequentially", label, i)
			return false
		}
	}
	return true
}

// TestParallelMatchesSequentialQuick cross-checks the partitioned
// solver against the sequential solver and the map-based reference on
// random multi-component systems with conditional constraints.
func TestParallelMatchesSequentialQuick(t *testing.T) {
	prop := func(seed int64) bool {
		seqSys := randomClusterSystem(seed, 4)
		parSys := randomClusterSystem(seed, 4)
		refSys := randomClusterSystem(seed, 4)
		seq := solve.Solve(seqSys)
		par := solve.SolveWorkers(nil, parSys, 4)
		ref := solve.SolveReference(refSys)
		if !requireExactMatch(t, fmt.Sprintf("seed %d", seed), seqSys, seq, parSys, par) {
			return false
		}
		// And set-level agreement with the independent reference.
		pk, rk := classKeys(parSys.Locs), classKeys(refSys.Locs)
		for v := 0; v < parSys.NumVars(); v++ {
			got := normAtoms(par.Atoms(effects.Var(v)), pk)
			want := normAtoms(ref.Atoms(effects.Var(v)), rk)
			if !reflect.DeepEqual(got, want) {
				t.Logf("seed %d var %d: parallel %v reference %v", seed, v, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelMatchesSequentialProgen runs the full inference pipeline
// on random well-typed programs and requires the partitioned solver to
// reproduce the sequential solver exactly, and the reference solver up
// to set equality.
func TestParallelMatchesSequentialProgen(t *testing.T) {
	n := int64(200)
	if testing.Short() {
		n = 40
	}
	build := func(seed int64) *effects.System {
		src := progen.Generate(seed)
		mod, err := core.LoadModule("p.mc", src)
		if err != nil {
			t.Fatalf("seed %d: progen program fails to load: %v", seed, err)
		}
		res := infer.Run(mod.TInfo, mod.Diags, infer.Options{InferRestrictLets: true})
		return res.Sys
	}
	for seed := int64(0); seed < n; seed++ {
		label := fmt.Sprintf("progen seed %d", seed)
		seqSys, parSys, refSys := build(seed), build(seed), build(seed)
		seq := solve.Solve(seqSys)
		par := solve.SolveWorkers(nil, parSys, 4)
		ref := solve.SolveReference(refSys)
		if !requireExactMatch(t, label, seqSys, seq, parSys, par) {
			t.Fatalf("%s: parallel result differs from sequential", label)
		}
		compareSolutions(t, label, parSys, par, refSys, ref)
	}
}

// TestParallelStatsDeterministic solves the same multi-component
// system at several worker counts and repeatedly, requiring identical
// Stats every time — the parallel merge must not let scheduling wobble
// into the wire-visible counters.
func TestParallelStatsDeterministic(t *testing.T) {
	base := solve.Solve(randomClusterSystem(7, 6)).Stats
	if base.Vars == 0 || base.AtomsPropagated == 0 {
		t.Fatalf("implausibly empty stats: %v", base)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			got := solve.SolveWorkers(nil, randomClusterSystem(7, 6), workers).Stats
			if got != base {
				t.Fatalf("workers=%d rep=%d: stats differ\n sequential: %v\n parallel:   %v",
					workers, rep, base, got)
			}
		}
	}
}

// TestParallelDeadlineAbort proves a deadline expiring inside a worker
// surfaces as a KindTimeout failure on the coordinating goroutine, not
// as a panic or a hang.
func TestParallelDeadlineAbort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: every worker aborts on its first check
	tr := faults.NewTrace("m")
	fail := faults.Run("m", tr, func() error {
		solve.SolveWorkers(ctx, randomClusterSystem(3, 6), 4)
		return nil
	})
	if fail == nil {
		t.Fatal("expected a timeout failure, got success")
	}
	if fail.Kind != faults.KindTimeout {
		t.Fatalf("expected %s, got %s (%s)", faults.KindTimeout, fail.Kind, fail.Message)
	}
}

// TestPooledSolveReuse runs many solves back to back with Release, so
// every pooled buffer is recycled, and requires each round to
// reproduce the first round's answers — stale state leaking through
// the pools would show up immediately.
func TestPooledSolveReuse(t *testing.T) {
	snapshot := func() []string {
		sys := randomClusterSystem(11, 4)
		res := solve.SolveWorkers(nil, sys, 4)
		defer res.Release()
		var out []string
		for v := 0; v < sys.NumVars(); v++ {
			out = append(out, fmt.Sprint(res.Atoms(effects.Var(v))))
		}
		out = append(out, res.Stats.String())

		// Interleave a sequential pooled solve of a different system so
		// the scratch comes back dirty.
		other := solve.Solve(randomClusterSystem(13, 2))
		out = append(out, other.Stats.String())
		other.Release()
		return out
	}
	want := snapshot()
	for i := 0; i < 10; i++ {
		if got := snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d diverged from round 0:\n got:  %v\n want: %v", i, got, want)
		}
	}
}

// TestResultReleasePanics pins the use-after-Release contract.
func TestResultReleasePanics(t *testing.T) {
	res := solve.Solve(randomCondSystem(5))
	res.Release()
	res.Release() // double release is a no-op
	defer func() {
		if recover() == nil {
			t.Fatal("accessor after Release did not panic")
		}
	}()
	res.Atoms(0)
}
