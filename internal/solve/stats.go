package solve

import "fmt"

// Stats counts the work a Solve performed. The counters are
// deterministic for a given system: atom IDs are assigned in
// first-intern order, propagation order follows the CSR edge layout,
// and conditionals fire in creation order on rechecks — so two runs
// over the same module produce identical numbers. Benchmarks and the
// experiments driver report them so speedups (or regressions) in the
// solver are observable rather than asserted.
// Stats is part of the service wire contract (it rides in every
// AnalyzeResponse), hence the JSON tags.
type Stats struct {
	// Vars is the number of effect variables in the solved system
	// (after normalization introduced fresh ones).
	Vars int `json:"vars"`
	// Atoms is the number of distinct atoms interned (kind × location
	// class, counting pre- and post-unification identities).
	Atoms int `json:"atoms"`
	// AtomsPropagated counts successful set insertions (an atom newly
	// entering a variable's solution).
	AtomsPropagated int `json:"atoms_propagated"`
	// IntersectionArrivals counts atoms newly arriving on either side
	// of an intersection node.
	IntersectionArrivals int `json:"intersection_arrivals"`
	// CondFirings counts conditional constraints whose trigger became
	// true.
	CondFirings int `json:"cond_firings"`
	// Unifications counts location unifications observed while
	// solving (fired ActUnify actions that actually merged classes,
	// plus any unifications performed by other store clients during
	// the run).
	Unifications int `json:"unifications"`
	// Recanonicalizations counts incremental re-canonicalization
	// passes (one per quiescent point with pending unifications; each
	// pass touches only the gates holding a stale atom or a merged
	// right-set location).
	Recanonicalizations int `json:"recanonicalizations"`
}

// Add accumulates other into s (for aggregating per-solve stats over
// a pipeline or a corpus).
func (s *Stats) Add(other Stats) {
	s.Vars += other.Vars
	s.Atoms += other.Atoms
	s.AtomsPropagated += other.AtomsPropagated
	s.IntersectionArrivals += other.IntersectionArrivals
	s.CondFirings += other.CondFirings
	s.Unifications += other.Unifications
	s.Recanonicalizations += other.Recanonicalizations
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"vars=%d atoms=%d propagated=%d inter-arrivals=%d cond-firings=%d unifications=%d recanons=%d",
		s.Vars, s.Atoms, s.AtomsPropagated, s.IntersectionArrivals,
		s.CondFirings, s.Unifications, s.Recanonicalizations)
}
