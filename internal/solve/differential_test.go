package solve_test

// Differential tests: the dense-index solver (solve.Solve) against the
// retained map-based reference implementation (solve.SolveReference).
// The two solvers share nothing beyond the normalized constraint form,
// so agreement over random systems and random full-pipeline programs
// is strong evidence the interner/bitset/CSR rework preserved the
// least-solution semantics.
//
// Solving mutates the system's location store (fired conditionals
// unify locations), so each solver gets its own identically built
// system. The two stores can then disagree on class representatives —
// firing order is not part of the solver contract — so atom sets are
// compared under a store-independent canonical name: the smallest raw
// location of each union-find class.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"localalias/internal/core"
	"localalias/internal/drivergen"
	"localalias/internal/effects"
	"localalias/internal/infer"
	"localalias/internal/locs"
	"localalias/internal/progen"
	"localalias/internal/solve"
)

// classKeys maps every location to the smallest raw location in its
// union-find class.
func classKeys(ls *locs.Store) []locs.Loc {
	min := make(map[locs.Loc]locs.Loc, ls.Len())
	for l := 0; l < ls.Len(); l++ {
		r := ls.Find(locs.Loc(l))
		if _, ok := min[r]; !ok {
			min[r] = locs.Loc(l)
		}
	}
	keys := make([]locs.Loc, ls.Len())
	for l := 0; l < ls.Len(); l++ {
		keys[l] = min[ls.Find(locs.Loc(l))]
	}
	return keys
}

// normAtoms rewrites a canonical atom list under classKeys.
func normAtoms(atoms []effects.Atom, keys []locs.Loc) map[effects.Atom]bool {
	out := make(map[effects.Atom]bool, len(atoms))
	for _, a := range atoms {
		out[effects.Atom{Kind: a.Kind, Loc: keys[a.Loc]}] = true
	}
	return out
}

// firedSet maps fired conditionals to their creation indices in
// sys.Conds (the two systems are built identically, so indices line
// up; firing order is allowed to differ).
func firedSet(sys *effects.System, fired []*effects.Cond) map[int]bool {
	idx := make(map[*effects.Cond]int, len(sys.Conds))
	for i, c := range sys.Conds {
		idx[c] = i
	}
	out := make(map[int]bool, len(fired))
	for _, c := range fired {
		out[idx[c]] = true
	}
	return out
}

// compareSolutions checks per-variable atom sets and the fired-cond
// set; both sides carry their own system because each was solved
// independently.
func compareSolutions(t *testing.T, label string,
	denseSys *effects.System, dense *solve.Result,
	refSys *effects.System, ref *solve.RefResult) {
	t.Helper()
	if denseSys.NumVars() != refSys.NumVars() {
		t.Fatalf("%s: system build is nondeterministic: %d vs %d vars",
			label, denseSys.NumVars(), refSys.NumVars())
	}
	dk := classKeys(denseSys.Locs)
	rk := classKeys(refSys.Locs)
	for v := 0; v < denseSys.NumVars(); v++ {
		got := normAtoms(dense.Atoms(effects.Var(v)), dk)
		want := normAtoms(ref.Atoms(effects.Var(v)), rk)
		if len(got) != len(want) {
			t.Fatalf("%s: var %d: dense has %d atoms, reference %d\n dense: %v\n ref:   %v",
				label, v, len(got), len(want), got, want)
		}
		for a := range got {
			if !want[a] {
				t.Fatalf("%s: var %d: dense-only atom %v", label, v, a)
			}
		}
	}
	gotFired := firedSet(denseSys, dense.Fired)
	wantFired := firedSet(refSys, ref.Fired)
	if len(gotFired) != len(wantFired) {
		t.Fatalf("%s: dense fired %d conds, reference %d", label, len(gotFired), len(wantFired))
	}
	for i := range gotFired {
		if !wantFired[i] {
			t.Fatalf("%s: cond %d fired only in the dense solver", label, i)
		}
	}
}

// randomCondSystem builds a system with conditional constraints from a
// seed; calling it twice with the same seed produces identical
// systems over independent stores.
func randomCondSystem(seed int64) *effects.System {
	r := rand.New(rand.NewSource(seed))
	ls := locs.NewStore()
	sys := effects.NewSystem(ls)
	buildRandomCondInto(sys, r)
	return sys
}

// buildRandomCondInto adds one random constraint cluster — fresh
// variables, fresh locations, conditionals over both — to sys. The
// parallel differential tests call it several times into one system
// to get a naturally multi-component graph.
func buildRandomCondInto(sys *effects.System, r *rand.Rand) {
	ls := sys.Locs
	nv := 3 + r.Intn(10)
	nl := 3 + r.Intn(6)
	var vars []effects.Var
	for i := 0; i < nv; i++ {
		vars = append(vars, sys.Fresh("v"))
	}
	var rhos []locs.Loc
	for i := 0; i < nl; i++ {
		rhos = append(rhos, ls.Fresh("r"))
	}
	rho := func() locs.Loc { return rhos[r.Intn(nl)] }
	v := func() effects.Var { return vars[r.Intn(nv)] }
	kind := func() effects.Kind { return effects.Kind(r.Intn(4)) }
	atom := func() effects.Atom { return effects.Atom{Kind: kind(), Loc: rho()} }

	nc := 4 + r.Intn(16)
	for i := 0; i < nc; i++ {
		switch r.Intn(4) {
		case 0:
			sys.AddAtom(atom(), v())
		case 1:
			sys.AddVarIncl(v(), v())
		case 2:
			sys.AddIncl(effects.Inter{
				L: effects.VarRef{V: v()},
				R: effects.VarRef{V: v()},
			}, v())
		case 3:
			sys.AddIncl(effects.Union{
				L: effects.AtomExpr{A: atom()},
				R: effects.VarRef{V: v()},
			}, v())
		}
	}
	ncond := 1 + r.Intn(5)
	for i := 0; i < ncond; i++ {
		var trig effects.Trigger
		switch r.Intn(4) {
		case 0:
			trig = effects.LocIn{Loc: rho(), V: v()}
		case 1:
			trig = effects.AtomIn{Kind: kind(), Loc: rho(), V: v()}
		case 2:
			trig = effects.KindIn{Kind: kind(), V: v()}
		case 3:
			trig = effects.PairIn{KindA: kind(), VA: v(), KindB: kind(), VB: v()}
		}
		var acts []effects.Action
		for j, na := 0, 1+r.Intn(2); j < na; j++ {
			switch r.Intn(3) {
			case 0:
				acts = append(acts, effects.ActUnify{A: rho(), B: rho()})
			case 1:
				acts = append(acts, effects.ActIncl{From: v(), To: v()})
			case 2:
				acts = append(acts, effects.ActAddAtom{A: atom(), V: v()})
			}
		}
		sys.AddCond(&effects.Cond{Trigger: trig, Actions: acts,
			Reason: fmt.Sprintf("cond %d", i)})
	}
	// A couple of pre-solve unifications.
	for i := 0; i < r.Intn(3); i++ {
		ls.Unify(rho(), rho())
	}
}

// TestDenseMatchesReferenceQuick cross-checks the solvers on random
// systems with conditional constraints — the machinery (gate rechecks,
// mid-solve unification, lazy re-canonicalization) the brute-force
// oracle in oracle_test.go cannot reach.
func TestDenseMatchesReferenceQuick(t *testing.T) {
	prop := func(seed int64) bool {
		denseSys := randomCondSystem(seed)
		refSys := randomCondSystem(seed)
		dense := solve.Solve(denseSys)
		ref := solve.SolveReference(refSys)
		dk := classKeys(denseSys.Locs)
		rk := classKeys(refSys.Locs)
		for v := 0; v < denseSys.NumVars(); v++ {
			got := normAtoms(dense.Atoms(effects.Var(v)), dk)
			want := normAtoms(ref.Atoms(effects.Var(v)), rk)
			if len(got) != len(want) {
				t.Logf("seed %d var %d: dense %v ref %v", seed, v, got, want)
				return false
			}
			for a := range got {
				if !want[a] {
					t.Logf("seed %d var %d: dense-only %v", seed, v, a)
					return false
				}
			}
		}
		gf, wf := firedSet(denseSys, dense.Fired), firedSet(refSys, ref.Fired)
		if len(gf) != len(wf) {
			t.Logf("seed %d: fired %d vs %d", seed, len(gf), len(wf))
			return false
		}
		for i := range gf {
			if !wf[i] {
				t.Logf("seed %d: cond %d fired only dense", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDenseMatchesReferenceProgen runs both solvers over the full
// inference pipeline on random well-typed programs (restrict-let
// inference on, so the systems carry the paper's conditional
// constraints) and requires identical least solutions.
func TestDenseMatchesReferenceProgen(t *testing.T) {
	n := int64(200)
	if testing.Short() {
		n = 40
	}
	solveSys := func(seed int64) (*effects.System, *infer.Result) {
		src := progen.Generate(seed)
		mod, err := core.LoadModule("p.mc", src)
		if err != nil {
			t.Fatalf("seed %d: progen program fails to load: %v", seed, err)
		}
		res := infer.Run(mod.TInfo, mod.Diags, infer.Options{InferRestrictLets: true})
		return res.Sys, res
	}
	for seed := int64(0); seed < n; seed++ {
		denseSys, _ := solveSys(seed)
		refSys, _ := solveSys(seed)
		dense := solve.Solve(denseSys)
		ref := solve.SolveReference(refSys)
		compareSolutions(t, fmt.Sprintf("progen seed %d", seed), denseSys, dense, refSys, ref)
	}
}

// TestSolveStatsDeterministic solves a fixed corpus module twice from
// scratch and requires identical, nonzero work counters: atom IDs are
// assigned in first-intern order and propagation follows the CSR edge
// layout, so the counts must not wobble between runs.
func TestSolveStatsDeterministic(t *testing.T) {
	var spec *drivergen.ModuleSpec
	for _, m := range drivergen.Corpus() {
		if m.Name == "ide_tape" {
			spec = m
		}
	}
	if spec == nil {
		t.Fatal("no ide_tape module in the corpus")
	}
	src := spec.Source()
	run := func() solve.Stats {
		mod, err := core.LoadModule("ide_tape.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		lr, err := mod.AnalyzeLocking(core.LockingOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return lr.SolveStats
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("solver stats differ between identical runs:\n first:  %v\n second: %v", first, second)
	}
	if first.Vars == 0 || first.Atoms == 0 || first.AtomsPropagated == 0 {
		t.Fatalf("implausibly empty stats: %v", first)
	}
}
