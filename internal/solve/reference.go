package solve

import (
	"sort"

	"localalias/internal/effects"
	"localalias/internal/locs"
)

// This file retains the original map-based solver as a differential
// oracle for the dense-index solver in solve.go. It represents every
// effect-variable set as map[effects.Atom]bool and every intersection
// node as a map pair, exactly as the solver shipped before the dense
// rework — slower, but structurally independent of the interner,
// bitset, and CSR machinery it cross-checks. Tests run both solvers
// on identical systems and require identical least solutions and
// firing sequences (TestDenseMatchesReference*, and the progen-based
// differential test).

// RefResult is the least solution computed by SolveReference.
type RefResult struct {
	sys  *effects.System
	ls   *locs.Store
	sets []map[effects.Atom]bool

	// Fired lists fired conditionals in firing order.
	Fired []*effects.Cond
}

// Atoms returns the canonical atoms of v's solution, sorted (same
// contract as Result.Atoms).
func (r *RefResult) Atoms(v effects.Var) []effects.Atom {
	var out []effects.Atom
	seen := make(map[effects.Atom]bool)
	for a := range r.sets[v] {
		ca := effects.Atom{Kind: a.Kind, Loc: r.ls.Find(a.Loc)}
		if !seen[ca] {
			seen[ca] = true
			out = append(out, ca)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Loc != out[j].Loc {
			return out[i].Loc < out[j].Loc
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

type refSolver struct {
	g   *graph
	ls  *locs.Store
	res *RefResult

	// Dynamic graph state (conditionals add edges and atoms).
	extra [][]target
	sets  []map[effects.Atom]bool
	left  []map[effects.Atom]bool
	right []map[locs.Loc]bool

	queue []refQitem

	pending  map[*effects.Cond]bool
	condList []*effects.Cond
	watch    map[effects.Var][]*effects.Cond

	unified bool
}

type refQitem struct {
	v effects.Var
	a effects.Atom
}

// SolveReference computes the least solution of sys with the retained
// map-based worklist algorithm. It is the reference implementation
// for differential testing; production callers use Solve.
func SolveReference(sys *effects.System) *RefResult {
	g := newGraph(sys, nil)
	s := &refSolver{g: g, ls: sys.Locs}
	s.res = &RefResult{sys: sys, ls: sys.Locs}
	s.sets = make([]map[effects.Atom]bool, g.nvar)
	for i := range s.sets {
		s.sets[i] = make(map[effects.Atom]bool)
	}
	s.left = make([]map[effects.Atom]bool, len(g.inter))
	s.right = make([]map[locs.Loc]bool, len(g.inter))
	for i := range g.inter {
		s.left[i] = make(map[effects.Atom]bool)
		s.right[i] = make(map[locs.Loc]bool)
	}
	s.pending = make(map[*effects.Cond]bool, len(sys.Conds))
	s.condList = sys.Conds
	s.watch = make(map[effects.Var][]*effects.Cond)
	for _, c := range sys.Conds {
		s.pending[c] = true
		forTriggerVars(c.Trigger, func(v effects.Var) {
			s.watch[v] = append(s.watch[v], c)
		})
	}

	sys.Locs.OnUnify(func(winner, loser locs.Loc) { s.unified = true })

	for v := range g.seeds {
		for _, a := range g.seeds[v] {
			s.insert(effects.Var(v), a)
		}
	}
	for i := range g.inter {
		for _, a := range g.inter[i].leftSeeds {
			s.arriveLeft(int32(i), a)
		}
		for _, a := range g.inter[i].rightSeeds {
			s.arriveRight(int32(i), a)
		}
	}

	for {
		s.drain()
		if s.unified {
			s.unified = false
			s.recanonicalize()
			s.recheckConds()
			if len(s.queue) > 0 || s.unified {
				continue
			}
		}
		break
	}

	s.res.sets = s.sets
	return s.res
}

func (s *refSolver) drain() {
	for len(s.queue) > 0 {
		it := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.propagate(it.v, it.a)
	}
}

func (s *refSolver) insert(v effects.Var, a effects.Atom) {
	a.Loc = s.ls.Find(a.Loc)
	if s.sets[v][a] {
		return
	}
	s.sets[v][a] = true
	s.queue = append(s.queue, refQitem{v: v, a: a})
}

func (s *refSolver) propagate(v effects.Var, a effects.Atom) {
	for _, t := range s.g.outEdges(int32(v)) {
		s.follow(t, a)
	}
	if s.extra != nil {
		for _, t := range s.extra[v] {
			s.follow(t, a)
		}
	}
	s.checkTriggersFor(v, a)
}

func (s *refSolver) follow(t target, a effects.Atom) {
	switch t.kind {
	case toVar:
		s.insert(effects.Var(t.idx), a)
	case toLeft:
		s.arriveLeft(t.idx, a)
	case toRight:
		s.arriveRight(t.idx, a)
	}
}

func (s *refSolver) arriveLeft(i int32, a effects.Atom) {
	a.Loc = s.ls.Find(a.Loc)
	if s.left[i][a] {
		return
	}
	s.left[i][a] = true
	if s.right[i][a.Loc] {
		s.insert(s.g.inter[i].Out, a)
	}
}

func (s *refSolver) arriveRight(i int32, a effects.Atom) {
	rho := s.ls.Find(a.Loc)
	if s.right[i][rho] {
		return
	}
	s.right[i][rho] = true
	for b := range s.left[i] {
		if s.ls.Find(b.Loc) == rho {
			s.insert(s.g.inter[i].Out, b)
		}
	}
}

func (s *refSolver) recanonicalize() {
	for v := range s.sets {
		for a := range s.sets[v] {
			if c := s.ls.Find(a.Loc); c != a.Loc {
				delete(s.sets[v], a)
				a2 := effects.Atom{Kind: a.Kind, Loc: c}
				if !s.sets[v][a2] {
					s.sets[v][a2] = true
					s.queue = append(s.queue, refQitem{v: effects.Var(v), a: a2})
				}
			}
		}
	}
	for i := range s.left {
		for a := range s.left[i] {
			if c := s.ls.Find(a.Loc); c != a.Loc {
				delete(s.left[i], a)
				s.left[i][effects.Atom{Kind: a.Kind, Loc: c}] = true
			}
		}
		for rho := range s.right[i] {
			if c := s.ls.Find(rho); c != rho {
				delete(s.right[i], rho)
				s.right[i][c] = true
			}
		}
		for a := range s.left[i] {
			if s.right[i][s.ls.Find(a.Loc)] {
				s.insert(s.g.inter[i].Out, a)
			}
		}
	}
}

func (s *refSolver) checkTriggersFor(v effects.Var, a effects.Atom) {
	for _, c := range s.watch[v] {
		if !s.pending[c] {
			continue
		}
		if s.refTriggerMatches(c.Trigger, v, a) {
			s.fire(c)
		}
	}
}

func (s *refSolver) recheckConds() {
	for _, c := range s.condList {
		if !s.pending[c] {
			continue
		}
		if s.refTriggerHolds(c.Trigger) {
			s.fire(c)
		}
	}
}

func (s *refSolver) refTriggerMatches(t effects.Trigger, v effects.Var, a effects.Atom) bool {
	switch t := t.(type) {
	case effects.LocIn:
		return t.V == v && s.ls.Find(t.Loc) == s.ls.Find(a.Loc)
	case effects.AtomIn:
		return t.V == v && t.Kind == a.Kind && s.ls.Find(t.Loc) == s.ls.Find(a.Loc)
	case effects.KindIn:
		return t.V == v && t.Kind == a.Kind
	case effects.PairIn:
		if t.VA == v && a.Kind == t.KindA {
			return s.refHasKindLoc(t.VB, t.KindB, a.Loc)
		}
		if t.VB == v && a.Kind == t.KindB {
			return s.refHasKindLoc(t.VA, t.KindA, a.Loc)
		}
		return false
	default:
		return false
	}
}

func (s *refSolver) refTriggerHolds(t effects.Trigger) bool {
	switch t := t.(type) {
	case effects.LocIn:
		rho := s.ls.Find(t.Loc)
		for a := range s.sets[t.V] {
			if s.ls.Find(a.Loc) == rho {
				return true
			}
		}
	case effects.AtomIn:
		rho := s.ls.Find(t.Loc)
		for a := range s.sets[t.V] {
			if a.Kind == t.Kind && s.ls.Find(a.Loc) == rho {
				return true
			}
		}
	case effects.KindIn:
		for a := range s.sets[t.V] {
			if a.Kind == t.Kind {
				return true
			}
		}
	case effects.PairIn:
		for a := range s.sets[t.VA] {
			if a.Kind == t.KindA && s.refHasKindLoc(t.VB, t.KindB, a.Loc) {
				return true
			}
		}
	}
	return false
}

func (s *refSolver) refHasKindLoc(v effects.Var, k effects.Kind, loc locs.Loc) bool {
	rho := s.ls.Find(loc)
	for a := range s.sets[v] {
		if a.Kind == k && s.ls.Find(a.Loc) == rho {
			return true
		}
	}
	return false
}

func (s *refSolver) fire(c *effects.Cond) {
	delete(s.pending, c)
	s.res.Fired = append(s.res.Fired, c)
	for _, act := range c.Actions {
		switch act := act.(type) {
		case effects.ActUnify:
			s.ls.Unify(act.A, act.B)
		case effects.ActIncl:
			if s.extra == nil {
				s.extra = make([][]target, s.g.nvar)
			}
			s.extra[act.From] = append(s.extra[act.From], target{kind: toVar, idx: int32(act.To)})
			for a := range s.sets[act.From] {
				s.insert(act.To, a)
			}
		case effects.ActAddAtom:
			s.insert(act.V, act.A)
		}
	}
}
