package solve

import (
	"strings"
	"sync/atomic"
	"testing"

	"localalias/internal/effects"
	"localalias/internal/faults"
	"localalias/internal/locs"
)

// clusteredSystem builds k disjoint constraint clusters in one system,
// so the partitioner finds k components and SolveWorkers genuinely
// dispatches units onto worker goroutines.
func clusteredSystem(k int) *effects.System {
	ls := locs.NewStore()
	sys := effects.NewSystem(ls)
	for i := 0; i < k; i++ {
		v := sys.Fresh("v")
		w := sys.Fresh("w")
		l := ls.Fresh("r")
		sys.AddAtom(effects.Atom{Kind: effects.Read, Loc: l}, v)
		sys.AddVarIncl(v, w)
	}
	return sys
}

// TestWorkerPanicContained proves a panic raised on a worker goroutine
// mid-component is captured with the worker's stack, re-thrown on the
// solving goroutine, and contained by the same faults.Run guard every
// front end wraps around analysis — one panicking component degrades
// its module to a structured failure record, never the process.
func TestWorkerPanicContained(t *testing.T) {
	var fired atomic.Bool
	testUnitHook = func(u *solver) {
		if fired.CompareAndSwap(false, true) {
			panic("injected worker fault")
		}
	}
	defer func() { testUnitHook = nil }()

	fail := faults.Run("m", faults.NewTrace("m"), func() error {
		SolveWorkers(nil, clusteredSystem(6), 4)
		return nil
	})
	if fail == nil {
		t.Fatal("expected a contained panic, got success")
	}
	if fail.Kind != faults.KindPanic {
		t.Fatalf("failure kind = %s, want %s (%s)", fail.Kind, faults.KindPanic, fail.Message)
	}
	if !strings.Contains(fail.Message, "injected worker fault") {
		t.Errorf("failure message %q does not carry the panic value", fail.Message)
	}
	// The stack must be the worker's — pointing into the unit solve,
	// not just the coordinator's re-throw.
	if !strings.Contains(fail.Stack, "runUnit") {
		t.Errorf("failure stack does not show the worker frame:\n%s", fail.Stack)
	}
}

// TestWorkerPanicOthersComplete: with one unit panicking, every other
// component still completes before the coordinator re-throws — the
// worker pool drains instead of deadlocking or leaking goroutines.
func TestWorkerPanicOthersComplete(t *testing.T) {
	var units atomic.Int32
	var fired atomic.Bool
	testUnitHook = func(u *solver) {
		units.Add(1)
		if fired.CompareAndSwap(false, true) {
			panic("injected worker fault")
		}
	}
	defer func() { testUnitHook = nil }()

	const k = 6
	fail := faults.Run("m", faults.NewTrace("m"), func() error {
		SolveWorkers(nil, clusteredSystem(k), 3)
		return nil
	})
	if fail == nil {
		t.Fatal("expected a contained panic, got success")
	}
	if got := units.Load(); got != k {
		t.Errorf("%d of %d units started; the pool must keep draining past a panicked component", got, k)
	}
}
