package solve

import (
	"localalias/internal/effects"
	"localalias/internal/locs"
)

// This file partitions a propagation graph into its connected
// components so SolveWorkers can solve them concurrently. The
// partition must guarantee one property: no event in one component
// can influence any event in another. Then a component's solo
// execution is literally the subsequence of the sequential solver's
// execution touching that component, and every observable — solution
// sets, violations, per-group firing order, work counters — comes out
// identical regardless of schedule (see docs/ALGORITHMS.md,
// "Component-partitioned solving").
//
// Two structures carry influence between variables:
//
//   - Constraint edges. Every normal-form constraint moves atoms
//     among its participant variables, and every conditional's
//     actions write to its action variables when its trigger
//     (observing its trigger variables) becomes true. Union those
//     participant sets.
//
//   - Location unification. A fired ActUnify merges location classes,
//     which changes Find — and Find feeds gate comparisons, trigger
//     predicates, and atom canonicalization everywhere the merged
//     classes are mentioned. Locations don't belong to components, so
//     this is the subtle channel: two otherwise-disconnected
//     variables both holding atoms over a class that some conditional
//     may unify would observe each other's merge timing.
//
// The second channel is closed by a location-level pre-pass: build
// the coarsest location partition that solve-time unification could
// ever produce (union the operand classes of every ActUnify, fired or
// not — an overapproximation of what actually fires), mark the
// classes containing ActUnify operands volatile, and merge the
// variable components of everything that mentions a volatile class.
// Atoms over non-volatile classes have stable Find results for the
// whole solve, so cross-component mentions of them are harmless.
// Checks (NotIn/KindNotIn/PairNotIn) read the finished solution after
// every worker has joined and never merge anything.

// partition is the component decomposition of one graph. Component
// IDs are dense, assigned in order of each component's first variable;
// vars/inodes/conds are CSR membership lists (ascending variable and
// inode order, creation-order conditionals).
type partition struct {
	ncomp  int
	compOf []int32 // variable → component

	varStart   []int32
	vars       []int32
	inodeStart []int32
	inodes     []int32
	condStart  []int32
	conds      []int32 // indices into sys.Conds
}

// unionFind is a plain union-find over dense int32 indices. Union
// keeps the smaller root so representative choice is deterministic
// (not that correctness needs it — component IDs are renumbered by
// first member anyway).
type unionFind struct {
	parent []int32
}

func newUnionFind(n int) unionFind {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return unionFind{parent: p}
}

func (u unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	switch {
	case ra == rb:
	case ra < rb:
		u.parent[rb] = ra
	default:
		u.parent[ra] = rb
	}
}

// eachCondVar visits every effect variable a conditional can read or
// write: its trigger's variables plus its actions' operands.
func eachCondVar(c *effects.Cond, f func(v effects.Var)) {
	forTriggerVars(c.Trigger, f)
	for _, act := range c.Actions {
		switch act := act.(type) {
		case effects.ActIncl:
			f(act.From)
			f(act.To)
		case effects.ActAddAtom:
			f(act.V)
		}
	}
}

// newPartition computes the component decomposition of g. A result
// with compOf == nil means the partitioner bailed — the graph is
// empty or contains a construct it doesn't understand (a conditional
// touching no variable); solving then falls back to the sequential
// path, which is always correct. When compOf is set the CSR
// membership lists are populated even for ncomp == 1, so the memoized
// solver can fingerprint a whole-module component; SolveWorkers still
// only goes parallel for ncomp > 1.
func newPartition(g *graph) *partition {
	nvar := g.nvar
	sys := g.sys
	if nvar == 0 {
		return &partition{ncomp: 1}
	}
	uf := newUnionFind(nvar)

	// Constraint edges: each normal form's variables become one group.
	for i := range g.norms {
		n := &g.norms[i]
		if !n.Left.IsAtom {
			uf.union(int32(n.Left.V), int32(n.V))
		}
		if n.Inter && !n.Right.IsAtom {
			uf.union(int32(n.Right.V), int32(n.V))
		}
	}

	// Conditionals: trigger and action variables become one group,
	// anchored at the first (a trigger variable for every known
	// trigger type).
	anchors := make([]int32, len(sys.Conds))
	for ci, c := range sys.Conds {
		anchor := int32(-1)
		eachCondVar(c, func(v effects.Var) {
			if anchor < 0 {
				anchor = int32(v)
			} else {
				uf.union(anchor, int32(v))
			}
		})
		if anchor < 0 {
			// A conditional touching no variable at all — unknown
			// trigger with no actions. Nothing can fire it, but don't
			// reason about constructs we don't recognize.
			return &partition{ncomp: 1}
		}
		anchors[ci] = anchor
	}

	// Volatile location classes: the coarsest partition solve-time
	// unification could produce, assuming every ActUnify fires.
	ls := g.ls
	nloc := ls.Len()
	luf := newUnionFind(nloc)
	for l := 0; l < nloc; l++ {
		luf.union(int32(l), int32(ls.Find(locs.Loc(l))))
	}
	hasUnify := false
	for _, c := range sys.Conds {
		for _, act := range c.Actions {
			if u, ok := act.(effects.ActUnify); ok {
				luf.union(int32(u.A), int32(u.B))
				hasUnify = true
			}
		}
	}
	if hasUnify {
		vol := make([]bool, nloc)
		for _, c := range sys.Conds {
			for _, act := range c.Actions {
				if u, ok := act.(effects.ActUnify); ok {
					vol[luf.find(int32(u.A))] = true
					vol[luf.find(int32(u.B))] = true
				}
			}
		}
		// Merge the components of everything mentioning a volatile
		// class: the first mentioner becomes the class's owner,
		// later mentioners union with it.
		owner := make([]int32, nloc)
		for i := range owner {
			owner[i] = -1
		}
		mention := func(l locs.Loc, v int32) {
			r := luf.find(int32(l))
			if !vol[r] {
				return
			}
			if owner[r] < 0 {
				owner[r] = v
			} else {
				uf.union(owner[r], v)
			}
		}
		for i := range g.norms {
			n := &g.norms[i]
			if n.Left.IsAtom {
				mention(n.Left.A.Loc, int32(n.V))
			}
			if n.Inter && n.Right.IsAtom {
				mention(n.Right.A.Loc, int32(n.V))
			}
		}
		for ci, c := range sys.Conds {
			anchor := anchors[ci]
			switch t := c.Trigger.(type) {
			case effects.LocIn:
				mention(t.Loc, anchor)
			case effects.AtomIn:
				mention(t.Loc, anchor)
			}
			for _, act := range c.Actions {
				switch act := act.(type) {
				case effects.ActUnify:
					mention(act.A, anchor)
					mention(act.B, anchor)
				case effects.ActAddAtom:
					mention(act.A.Loc, anchor)
				}
			}
		}
	}

	// Dense component IDs in first-variable order.
	compOf := make([]int32, nvar)
	rootComp := make([]int32, nvar)
	for i := range rootComp {
		rootComp[i] = -1
	}
	ncomp := int32(0)
	for v := int32(0); int(v) < nvar; v++ {
		r := uf.find(v)
		if rootComp[r] < 0 {
			rootComp[r] = ncomp
			ncomp++
		}
		compOf[v] = rootComp[r]
	}
	p := &partition{ncomp: int(ncomp), compOf: compOf}

	p.varStart, p.vars = csrGroup(int(ncomp), nvar, func(i int) int32 { return compOf[i] })
	p.inodeStart, p.inodes = csrGroup(int(ncomp), len(g.inter), func(i int) int32 {
		return compOf[g.inter[i].Out]
	})
	p.condStart, p.conds = csrGroup(int(ncomp), len(sys.Conds), func(i int) int32 {
		return compOf[anchors[i]]
	})
	return p
}

// csrGroup buckets items 0..n-1 by group (a stable counting sort), so
// each group's member list preserves the original index order.
func csrGroup(ngroup, n int, groupOf func(i int) int32) (start, members []int32) {
	start = make([]int32, ngroup+1)
	for i := 0; i < n; i++ {
		start[groupOf(i)+1]++
	}
	for gi := 0; gi < ngroup; gi++ {
		start[gi+1] += start[gi]
	}
	members = make([]int32, n)
	fill := make([]int32, ngroup)
	copy(fill, start[:ngroup])
	for i := 0; i < n; i++ {
		gi := groupOf(i)
		members[fill[gi]] = int32(i)
		fill[gi]++
	}
	return start, members
}
