package solve

import (
	"context"
	"fmt"
	"sort"

	"localalias/internal/bitset"
	"localalias/internal/effects"
	"localalias/internal/faults"
	"localalias/internal/locs"
	"localalias/internal/obs"
)

// Result is the least solution of a constraint system, together with
// the conditional constraints that fired while computing it.
//
// Solution sets are stored as bitsets over interned atom IDs; the
// accessor methods translate back to effects.Atom values, always
// under canonical (post-unification) locations. A sequential solve
// uses one interner for every variable; a partitioned solve (see
// SolveWorkers) interns per component, and partOf routes each
// variable's reads to its component's table. Per-variable atom order
// is identical either way — a component's intern order does not
// depend on how the components were scheduled — so every accessor
// returns byte-identical answers regardless of worker count.
type Result struct {
	sys  *effects.System
	ls   *locs.Store
	in   *effects.Interner
	sets []bitset.Set

	// parts/partOf replace in for partitioned solves: variable v's
	// set holds IDs of parts[partOf[v]].
	parts  []*effects.Interner
	partOf []int32

	// ret holds the pooled storage this Result retains (interner and
	// solution-set arena); Release returns it.
	ret      *retained
	released bool

	// Fired lists the conditional constraints whose triggers became
	// true, in firing order. Inference interprets these: a fired
	// "failure" conditional unified a candidate's ρ and ρ′, turning
	// the candidate back into a plain let. A partitioned solve
	// concatenates per-component firing sequences in component order;
	// conditionals that can interact always share a component, so
	// every per-pair and per-tag order consumers rely on is preserved.
	Fired []*effects.Cond

	// AtomsPropagated counts insert operations (for benchmarks).
	// Equal to Stats.AtomsPropagated; retained as a field because
	// long-standing benchmarks read it directly.
	AtomsPropagated int

	// Stats counts the work performed while solving.
	Stats Stats
}

// interner returns the atom table that v's solution set indexes.
func (r *Result) interner(v effects.Var) *effects.Interner {
	if r.partOf == nil {
		return r.in
	}
	return r.parts[r.partOf[v]]
}

// check guards accessors against use-after-Release.
func (r *Result) check() {
	if r.released {
		panic("solve: Result used after Release")
	}
}

// Release returns the Result's pooled storage (interner tables and
// the solution-set arena) for reuse by later solves. It is optional —
// an unreleased Result is simply garbage-collected — but steady-state
// callers like the daemon release after rendering a response so the
// solver's big allocations are recycled instead of churned. After
// Release every accessor panics; the Result must not be used again.
func (r *Result) Release() {
	if r.released {
		return
	}
	r.released = true
	if r.ret != nil {
		putRetained(r.ret)
		r.ret = nil
	}
	for _, in := range r.parts {
		putInterner(in)
	}
	r.in, r.sets, r.parts, r.partOf = nil, nil, nil, nil
}

// Malformed returns the undecomposable inclusion constraints the
// pre-solve normalization dropped (see effects.System.Malformed).
// Non-empty means the least solution is computed over an incomplete
// system; pipeline callers must surface these as internal-error
// diagnostics and fail the module.
func (r *Result) Malformed() []effects.MalformedExpr {
	return r.sys.Malformed
}

// Atoms returns the canonical atoms of v's solution, sorted.
func (r *Result) Atoms(v effects.Var) []effects.Atom {
	r.check()
	in := r.interner(v)
	var out []effects.Atom
	seen := make(map[effects.Atom]bool)
	r.sets[v].ForEach(func(i int) {
		a := in.Atom(effects.ID(i))
		ca := effects.Atom{Kind: a.Kind, Loc: r.ls.Find(a.Loc)}
		if !seen[ca] {
			seen[ca] = true
			out = append(out, ca)
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Loc != out[j].Loc {
			return out[i].Loc < out[j].Loc
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// EachAtom calls f for every atom of v's solution with its location
// canonicalized, without allocating. If locations were unified after
// the solve, f may observe the same canonical atom more than once
// (Atoms dedupes; this does not) — callers doing idempotent work per
// atom, like the qualifier analysis's havoc, don't care.
func (r *Result) EachAtom(v effects.Var, f func(effects.Atom)) {
	r.check()
	in := r.interner(v)
	r.sets[v].ForEach(func(i int) {
		a := in.Atom(effects.ID(i))
		f(effects.Atom{Kind: a.Kind, Loc: r.ls.Find(a.Loc)})
	})
}

// ContainsLoc reports whether v's solution has any atom over loc.
func (r *Result) ContainsLoc(v effects.Var, loc locs.Loc) bool {
	r.check()
	in := r.interner(v)
	rho := r.ls.Find(loc)
	found := false
	r.sets[v].ForEach(func(i int) {
		if !found && r.ls.Find(in.Atom(effects.ID(i)).Loc) == rho {
			found = true
		}
	})
	return found
}

// ContainsAtom reports whether v's solution has the atom (canonical
// location comparison).
func (r *Result) ContainsAtom(v effects.Var, a effects.Atom) bool {
	r.check()
	in := r.interner(v)
	rho := r.ls.Find(a.Loc)
	found := false
	r.sets[v].ForEach(func(i int) {
		b := in.Atom(effects.ID(i))
		if !found && b.Kind == a.Kind && r.ls.Find(b.Loc) == rho {
			found = true
		}
	})
	return found
}

// Violations evaluates every check of the system — disinclusions,
// kind-absence checks and pair checks — against the least solution.
func (r *Result) Violations() []Violation {
	r.check()
	var out []Violation
	for _, ni := range r.sys.NotIns {
		if r.ContainsLoc(ni.V, ni.Loc) {
			out = append(out, Violation{
				Site:   ni.Site,
				What:   ni.What,
				Detail: fmt.Sprintf("ρ%d (%s) is in %s", ni.Loc, r.ls.Name(ni.Loc), r.sys.VarName(ni.V)),
			})
		}
	}
	for _, kn := range r.sys.KindNotIns {
		if a, ok := r.firstOfKind(kn.V, kn.Kind); ok {
			out = append(out, Violation{
				Site:   kn.Site,
				What:   kn.What,
				Detail: fmt.Sprintf("%s(%s) is in %s", a.Kind, r.ls.Name(a.Loc), r.sys.VarName(kn.V)),
			})
		}
	}
	for _, pn := range r.sys.PairNotIns {
		inA := r.interner(pn.VA)
		hit := false
		var witness effects.Atom
		r.sets[pn.VA].ForEach(func(i int) {
			if hit {
				return
			}
			a := inA.Atom(effects.ID(i))
			if a.Kind == pn.KindA && r.hasKindLocResult(pn.VB, pn.KindB, a.Loc) {
				hit = true
				witness = a
			}
		})
		if hit {
			out = append(out, Violation{
				Site: pn.Site,
				What: pn.What,
				Detail: fmt.Sprintf("%s(%s) in %s and %s of it in %s",
					pn.KindA, r.ls.Name(witness.Loc), r.sys.VarName(pn.VA),
					pn.KindB, r.sys.VarName(pn.VB)),
			})
		}
	}
	return out
}

// firstOfKind returns the lowest-ID atom of kind k in v's solution.
func (r *Result) firstOfKind(v effects.Var, k effects.Kind) (effects.Atom, bool) {
	in := r.interner(v)
	var got effects.Atom
	found := false
	r.sets[v].ForEach(func(i int) {
		if found {
			return
		}
		if a := in.Atom(effects.ID(i)); a.Kind == k {
			got, found = a, true
		}
	})
	return got, found
}

func (r *Result) hasKindLocResult(v effects.Var, k effects.Kind, loc locs.Loc) bool {
	in := r.interner(v)
	rho := r.ls.Find(loc)
	found := false
	r.sets[v].ForEach(func(i int) {
		a := in.Atom(effects.ID(i))
		if !found && a.Kind == k && r.ls.Find(a.Loc) == rho {
			found = true
		}
	})
	return found
}

// ---------------------------------------------------------------------
// Solver
//
// The solver works entirely over dense indices: variables and
// intersection nodes are int32s from the graph, atoms are interned
// IDs, solution/gate sets are bitsets, and static out-edges come from
// the graph's CSR rows. Only two structures can grow mid-solve: the
// interner (a unification creates the canonical successor of a stale
// atom) and the `extra` edge overlay (an ActIncl adds an inclusion).
//
// One solver instance drains one unit of work: the whole graph
// (myVars/myInodes nil — the sequential path) or a single connected
// component of it (the partitioned path, where sets/left/right/watch
// are shared arrays written only at indices the unit owns). A unit's
// execution depends only on its own slice of the system, which is
// what makes the partitioned schedule reproduce the sequential
// solver's per-variable results exactly (see docs/ALGORITHMS.md,
// "Component-partitioned solving").

type solver struct {
	g  *graph
	ls *locs.Store
	in *effects.Interner

	// ctx bounds the solve: the propagation loop checks its deadline
	// periodically (every deadlineStride insertions) so a per-module
	// timeout can abort a pathological constraint system
	// cooperatively. nil means unbounded.
	ctx   context.Context
	steps int

	// myVars/myInodes restrict this solver to one partition component;
	// nil means the whole graph.
	myVars   []int32
	myInodes []int32

	// extra overlays conditional-added out-edges on the immutable CSR
	// skeleton; nil until the first ActIncl fires.
	extra [][]target

	sets  []bitset.Set // per variable: atom IDs
	left  []bitset.Set // per inode: atom IDs buffered on the left
	right []bitset.Set // per inode: canonical locations seen on the right

	// queue of pending insertions.
	queue []qitem

	// pending[ci] is whether cond ci is still unfired; watch[v] lists
	// the conds whose trigger observes v, so an atom arrival only
	// examines the conds that could care. Rechecks walk conds in
	// creation order for deterministic firing. For a unit solver,
	// conds is the unit's creation-order subsequence and watch rows
	// hold unit-local indices (a trigger's variables are always in
	// the trigger's own component, so rows are unit-owned).
	conds   []*effects.Cond
	pending []bool
	watch   [][]int32

	unified bool // set by the unify observer

	// obsUnify is the per-solver unification observer passed to
	// locs.Store.UnifyObserved: unlike a registered OnUnify callback
	// it lives exactly as long as the solve and never sees another
	// unit's unifications.
	obsUnify func(winner, loser locs.Loc)

	// idsByLoc[rho] lists the IDs interned under location rho (the
	// location was canonical at intern time). When rho later loses a
	// unification, exactly those IDs go stale — so re-canonicalization
	// processes the affected IDs instead of rescanning the table.
	idsByLoc [][]effects.ID
	// losers accumulates the absorbed representatives since the last
	// re-canonicalization, recorded by the unify observer.
	losers []locs.Loc
	// memoWinners records the surviving representative of each
	// unification in order, set only by the memoized driver's observer
	// (see memo.go): the summary encodes post-unification atoms as
	// "winner of the i-th merge", so extraction needs the sequence.
	memoWinners []locs.Loc

	scratch  []int32      // reusable bitset snapshot buffer
	staleBuf []effects.ID // reusable stale-ID buffer

	// stats and fired accumulate this unit's work; the driver merges
	// them into the Result.
	stats Stats
	fired []*effects.Cond
}

type qitem struct {
	v  effects.Var
	id effects.ID
}

// Solve computes the least solution of sys, firing conditional
// constraints as their triggers become true. The algorithm is the
// paper's worklist scheme: initial propagation costs O(n·|locs|); each
// of the O(n) possible location unifications triggers O(n) of
// re-propagation, for the stated O(n²) bound.
func Solve(sys *effects.System) *Result {
	return SolveWorkers(nil, sys, 1)
}

// SolveCtx is Solve bounded by a context: the worklist loop checks
// ctx's deadline every few thousand steps and aborts via
// faults.CheckDeadline when it expires. It must run under a
// faults.Run/RunBounded guard when ctx can expire; a nil ctx (or one
// that never expires) makes it identical to Solve.
func SolveCtx(ctx context.Context, sys *effects.System) *Result {
	return SolveWorkers(ctx, sys, 1)
}

// SolveWorkers is SolveCtx with a parallelism knob: workers > 1
// partitions the propagation graph into connected components and
// solves them concurrently on at most that many goroutines. The
// result — solution sets, violations, firing order per interacting
// group, and every Stats counter — is identical to the sequential
// solver's; workers ≤ 1 (or an unpartitionable system) runs the
// sequential path. Like SolveCtx it must run under a faults guard
// when ctx can expire; worker panics and deadline aborts are
// re-thrown on the calling goroutine with the worker's stack.
func SolveWorkers(ctx context.Context, sys *effects.System, workers int) *Result {
	sc := getScratch()
	g := newGraph(sys, sc)
	if workers > 1 {
		if p := newPartition(g); p.ncomp > 1 {
			res := solveParallel(ctx, sys, g, p, workers, sc)
			putScratch(sc)
			return res
		}
	}
	res := solveSequential(ctx, sys, g, sc)
	putScratch(sc)
	return res
}

// deadlineStride is how many propagation steps pass between deadline
// checks — frequent enough that a timed-out module aborts promptly,
// rare enough to stay off the hot-path profile.
const deadlineStride = 4096

// solveSequential runs one solver over the whole graph. All big
// structures come from the pooled scratch; the two the Result
// retains (interner, solution-set arena) ride in a retained wrapper
// until Result.Release.
func solveSequential(ctx context.Context, sys *effects.System, g *graph, sc *scratch) *Result {
	ret := getRetained(sys.Locs.Len())
	s := &solver{
		g:   g,
		ls:  sys.Locs,
		in:  ret.in,
		ctx: ctx,
	}
	s.attachScratch(sc, sys.Locs.Len())

	// Pre-intern every seed atom so the ID space is known before the
	// solution bitsets are carved; the seeding loop below then hits
	// the interner map without growing it.
	s.preInternSeeds()

	// Conditionals and unifications intern more IDs later (canonical
	// successors of merged atoms); leave slack so those don't force
	// every set to regrow. Very large var×ID products fall back to
	// organic per-set growth rather than a quadratic arena. Right
	// sets are indexed by location, where members are few but the
	// index space is the whole store — organic growth fits them
	// better than an arena row per inode.
	idWords := s.in.Len()/48 + 4
	if g.nvar*idWords <= 1<<22 {
		s.sets = ret.setsBuf.Carve(g.nvar, idWords)
	} else {
		s.sets = make([]bitset.Set, g.nvar)
	}
	s.left = sc.leftBuf.Carve(len(g.inter), idWords)
	s.right = sc.takeRight(len(g.inter))

	s.conds = sys.Conds
	s.pending = sc.takePending(len(sys.Conds))
	s.watch = sc.takeWatch(g.nvar)
	s.buildWatch()

	s.seed()
	s.run()

	res := &Result{sys: sys, ls: sys.Locs, in: s.in, sets: s.sets, ret: ret}
	res.Fired = s.fired
	res.Stats = s.stats
	res.Stats.Vars = g.nvar
	res.Stats.Atoms = s.in.Len()
	res.AtomsPropagated = res.Stats.AtomsPropagated
	sc.reclaim(s)

	// Fold the per-solve work counters into the process-wide metrics
	// registry: a handful of atomic adds once per solve, so the
	// propagation loop itself carries zero instrumentation.
	st := &res.Stats
	obs.App().RecordSolve(st.AtomsPropagated, st.IntersectionArrivals,
		st.CondFirings, st.Unifications, st.Recanonicalizations)
	return res
}

// attachScratch wires the pooled per-solve buffers that every unit
// uses (worklist, loser list, snapshot buffers, stale-ID index).
func (s *solver) attachScratch(sc *scratch, nlocs int) {
	s.queue = sc.queue[:0]
	s.losers = sc.losers[:0]
	s.scratch = sc.scratchBuf[:0]
	s.staleBuf = sc.staleBuf[:0]
	s.idsByLoc = sc.takeIDsByLoc(nlocs)
	s.obsUnify = func(winner, loser locs.Loc) {
		s.unified = true
		s.stats.Unifications++
		s.losers = append(s.losers, loser)
	}
}

// forVars calls f for every variable of this solver's unit, in
// ascending order — the same relative order the sequential solver
// visits them in, which is what keeps per-variable intern order
// schedule-independent.
func (s *solver) forVars(f func(v int32)) {
	if s.myVars == nil {
		for v := int32(0); int(v) < s.g.nvar; v++ {
			f(v)
		}
		return
	}
	for _, v := range s.myVars {
		f(v)
	}
}

// forInodes calls f for every intersection node of the unit,
// ascending.
func (s *solver) forInodes(f func(i int32)) {
	if s.myInodes == nil {
		for i := int32(0); int(i) < len(s.g.inter); i++ {
			f(i)
		}
		return
	}
	for _, i := range s.myInodes {
		f(i)
	}
}

func (s *solver) preInternSeeds() {
	s.forVars(func(v int32) {
		for _, a := range s.g.seeds[v] {
			s.internCanon(a)
		}
	})
	s.forInodes(func(i int32) {
		in := &s.g.inter[i]
		for _, a := range in.leftSeeds {
			s.internCanon(a)
		}
		for _, a := range in.rightSeeds {
			s.internCanon(a)
		}
	})
}

// buildWatch marks every cond pending and indexes conds by the
// variables their triggers observe.
func (s *solver) buildWatch() {
	for ci, c := range s.conds {
		s.pending[ci] = true
		lci := int32(ci)
		forTriggerVars(c.Trigger, func(v effects.Var) {
			s.watch[v] = append(s.watch[v], lci)
		})
	}
}

// seed feeds the unit's direct atom inclusions into the worklist.
func (s *solver) seed() {
	s.forVars(func(v int32) {
		for _, a := range s.g.seeds[v] {
			s.insert(effects.Var(v), s.internCanon(a))
		}
	})
	s.forInodes(func(i int32) {
		in := &s.g.inter[i]
		for _, a := range in.leftSeeds {
			s.arriveLeft(i, s.internCanon(a))
		}
		for _, a := range in.rightSeeds {
			s.arriveRight(i, s.internCanon(a))
		}
	})
}

// run drains the unit to its fixpoint: propagate until quiescent,
// then re-canonicalize and re-check triggers after unifications,
// repeating while anything moved.
func (s *solver) run() {
	for {
		faults.CheckDeadline(s.ctx)
		s.drain()
		// Propagation quiesced. If a unification happened, atoms with
		// stale locations must be re-canonicalized and intersection
		// gates re-examined; triggers may also newly match.
		if s.unified {
			s.unified = false
			s.recanonicalize()
			s.recheckConds()
			if len(s.queue) > 0 || s.unified {
				continue
			}
		}
		break
	}
}

func (s *solver) drain() {
	for len(s.queue) > 0 {
		if s.steps++; s.ctx != nil && s.steps%deadlineStride == 0 {
			faults.CheckDeadline(s.ctx)
		}
		it := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.propagate(it.v, it.id)
	}
}

// internCanon interns a under its canonical location.
func (s *solver) internCanon(a effects.Atom) effects.ID {
	a.Loc = s.ls.Find(a.Loc)
	return s.intern(a)
}

// intern assigns a's dense ID; a.Loc must already be canonical. Newly
// interned IDs are indexed by location so a later unification can
// find the stale IDs without scanning the table.
func (s *solver) intern(a effects.Atom) effects.ID {
	n := s.in.Len()
	id := s.in.Intern(a)
	if int(id) == n {
		for int(a.Loc) >= len(s.idsByLoc) {
			s.idsByLoc = append(s.idsByLoc, nil)
		}
		s.idsByLoc[a.Loc] = append(s.idsByLoc[a.Loc], id)
	}
	return id
}

// canonID re-resolves id after possible unifications. In the common
// case (no unification since the atom was interned) this is a single
// union-find read; otherwise the canonical successor is interned.
func (s *solver) canonID(id effects.ID) effects.ID {
	a := s.in.Atom(id)
	if c := s.ls.Find(a.Loc); c != a.Loc {
		return s.intern(effects.Atom{Kind: a.Kind, Loc: c})
	}
	return id
}

// insert adds the atom (canonicalized) to v, queueing propagation.
func (s *solver) insert(v effects.Var, id effects.ID) {
	id = s.canonID(id)
	if s.sets[v].Add(int(id)) {
		s.stats.AtomsPropagated++
		s.queue = append(s.queue, qitem{v: v, id: id})
	}
}

// propagate pushes the atom (already recorded in v) along v's
// out-edges and checks triggers watching v.
func (s *solver) propagate(v effects.Var, id effects.ID) {
	for _, t := range s.g.outEdges(int32(v)) {
		s.follow(t, id)
	}
	if s.extra != nil {
		for _, t := range s.extra[v] {
			s.follow(t, id)
		}
	}
	s.checkTriggersFor(v, id)
}

func (s *solver) follow(t target, id effects.ID) {
	switch t.kind {
	case toVar:
		s.insert(effects.Var(t.idx), id)
	case toLeft:
		s.arriveLeft(t.idx, id)
	case toRight:
		s.arriveRight(t.idx, id)
	}
}

func (s *solver) arriveLeft(i int32, id effects.ID) {
	id = s.canonID(id)
	if !s.left[i].Add(int(id)) {
		return
	}
	s.stats.IntersectionArrivals++
	if s.right[i].Has(int(s.in.Atom(id).Loc)) {
		s.insert(s.g.inter[i].Out, id)
	}
}

func (s *solver) arriveRight(i int32, id effects.ID) {
	rho := s.ls.Find(s.in.Atom(id).Loc)
	if !s.right[i].Add(int(rho)) {
		return
	}
	s.stats.IntersectionArrivals++
	out := s.g.inter[i].Out
	s.left[i].ForEach(func(b int) {
		bid := effects.ID(b)
		if s.ls.Find(s.in.Atom(bid).Loc) == rho {
			s.insert(out, bid)
		}
	})
}

// recanonicalize restores the solver's invariants after location
// unifications. Variable sets need no rewriting at all: every read
// path — insert's canonID, trigger predicates, gate comparisons, and
// the Result accessors — resolves an atom's location through Find, so
// a member whose class was absorbed simply denotes its canonical
// successor and any future arrival of that successor dedupes against
// it through canonID. The only structures that compare by stored
// value are the intersection nodes, whose right sets hold canonical
// location indices and whose gates probe them with Has. So the pass
// is incremental and inode-local: the unify observer records each
// absorbed representative, idsByLoc maps it to exactly the atom IDs
// that went stale, and only gates holding a stale atom or location
// are re-examined. An untouched gate's members all kept their
// representatives, so it was already fully evaluated by the arrival
// rules and cannot newly unlock. This bounds the pass by
// O(inodes · stale) bit probes — the paper's O(n) "extra work to
// recompute reachability for the unified locations" per unification.
func (s *solver) recanonicalize() {
	s.stats.Recanonicalizations++
	if len(s.losers) == 0 {
		return
	}
	losers := s.losers
	s.losers = s.losers[:0] // nothing below unifies; safe to reset now

	// Collect the IDs that went stale and re-register them under their
	// new class, so a later merge of the winner still finds them.
	stale := s.staleBuf[:0]
	for _, l := range losers {
		if int(l) >= len(s.idsByLoc) {
			continue
		}
		stale = append(stale, s.idsByLoc[l]...)
		// l is never a representative again; truncate (not nil) so the
		// row's capacity survives into the next pooled solve.
		s.idsByLoc[l] = s.idsByLoc[l][:0]
	}
	for _, id := range stale {
		c := s.ls.Find(s.in.Atom(id).Loc)
		for int(c) >= len(s.idsByLoc) {
			s.idsByLoc = append(s.idsByLoc, nil)
		}
		s.idsByLoc[c] = append(s.idsByLoc[c], id)
	}

	s.forInodes(func(i int32) {
		// Gate state compares by stored value: right sets hold
		// canonical location indices, so absorbed ones must be
		// remapped; left atoms stay as-is (the re-exam below and the
		// arrival rules both resolve them through Find).
		touched := false
		for _, id := range stale {
			if s.left[i].Has(int(id)) {
				touched = true
				break
			}
		}
		for _, l := range losers {
			if s.right[i].Has(int(l)) {
				s.right[i].Remove(int(l))
				s.right[i].Add(int(s.ls.Find(l)))
				touched = true
			}
		}
		if !touched {
			return
		}
		// The merge may newly unlock buffered left atoms of this gate.
		out := s.g.inter[i].Out
		s.scratch = s.left[i].AppendMembers(s.scratch[:0])
		for _, id := range s.scratch {
			if s.right[i].Has(int(s.ls.Find(s.in.Atom(effects.ID(id)).Loc))) {
				s.insert(out, effects.ID(id))
			}
		}
	})
	s.staleBuf = stale[:0]
}

// ---------------------------------------------------------------------
// Conditional constraints

// forTriggerVars calls f for each effect variable a trigger observes.
func forTriggerVars(t effects.Trigger, f func(v effects.Var)) {
	switch t := t.(type) {
	case effects.LocIn:
		f(t.V)
	case effects.AtomIn:
		f(t.V)
	case effects.KindIn:
		f(t.V)
	case effects.PairIn:
		f(t.VA)
		if t.VA != t.VB {
			f(t.VB)
		}
	}
}

// checkTriggersFor tests unfired conditionals that could be enabled
// by the atom arriving in v.
func (s *solver) checkTriggersFor(v effects.Var, id effects.ID) {
	ws := s.watch[v]
	if len(ws) == 0 {
		return
	}
	a := s.in.Atom(id)
	for _, ci := range ws {
		if !s.pending[ci] {
			continue
		}
		if s.triggerMatches(s.conds[ci].Trigger, v, a) {
			s.fire(int(ci))
		}
	}
}

// recheckConds re-tests unfired conditionals against the full current
// solution (needed after unifications, which can make triggers true
// without any new atom arriving). Creation order keeps firing — and
// hence diagnostics — deterministic.
func (s *solver) recheckConds() {
	for ci := range s.conds {
		if !s.pending[ci] {
			continue
		}
		if s.triggerHolds(s.conds[ci].Trigger) {
			s.fire(ci)
		}
	}
}

func (s *solver) triggerMatches(t effects.Trigger, v effects.Var, a effects.Atom) bool {
	switch t := t.(type) {
	case effects.LocIn:
		return t.V == v && s.ls.Find(t.Loc) == s.ls.Find(a.Loc)
	case effects.AtomIn:
		return t.V == v && t.Kind == a.Kind && s.ls.Find(t.Loc) == s.ls.Find(a.Loc)
	case effects.KindIn:
		return t.V == v && t.Kind == a.Kind
	case effects.PairIn:
		if t.VA == v && a.Kind == t.KindA {
			return s.hasKindLoc(t.VB, t.KindB, a.Loc)
		}
		if t.VB == v && a.Kind == t.KindB {
			return s.hasKindLoc(t.VA, t.KindA, a.Loc)
		}
		return false
	default:
		return false
	}
}

// triggerHolds tests a trigger against the whole current solution.
func (s *solver) triggerHolds(t effects.Trigger) bool {
	switch t := t.(type) {
	case effects.LocIn:
		rho := s.ls.Find(t.Loc)
		return s.anyAtom(t.V, func(a effects.Atom) bool {
			return s.ls.Find(a.Loc) == rho
		})
	case effects.AtomIn:
		rho := s.ls.Find(t.Loc)
		return s.anyAtom(t.V, func(a effects.Atom) bool {
			return a.Kind == t.Kind && s.ls.Find(a.Loc) == rho
		})
	case effects.KindIn:
		return s.anyAtom(t.V, func(a effects.Atom) bool {
			return a.Kind == t.Kind
		})
	case effects.PairIn:
		return s.anyAtom(t.VA, func(a effects.Atom) bool {
			return a.Kind == t.KindA && s.hasKindLoc(t.VB, t.KindB, a.Loc)
		})
	}
	return false
}

// anyAtom reports whether some atom of v's current solution satisfies
// pred.
func (s *solver) anyAtom(v effects.Var, pred func(effects.Atom) bool) bool {
	found := false
	s.sets[v].ForEach(func(i int) {
		if !found && pred(s.in.Atom(effects.ID(i))) {
			found = true
		}
	})
	return found
}

func (s *solver) hasKindLoc(v effects.Var, k effects.Kind, loc locs.Loc) bool {
	rho := s.ls.Find(loc)
	return s.anyAtom(v, func(a effects.Atom) bool {
		return a.Kind == k && s.ls.Find(a.Loc) == rho
	})
}

// fire runs the actions of cond ci and marks it fired.
func (s *solver) fire(ci int) {
	c := s.conds[ci]
	s.pending[ci] = false
	s.stats.CondFirings++
	s.fired = append(s.fired, c)
	for _, act := range c.Actions {
		switch act := act.(type) {
		case effects.ActUnify:
			s.ls.UnifyObserved(act.A, act.B, s.obsUnify)
		case effects.ActIncl:
			if s.extra == nil {
				s.extra = make([][]target, s.g.nvar)
			}
			s.extra[act.From] = append(s.extra[act.From], target{kind: toVar, idx: int32(act.To)})
			// Snapshot: insert may grow the very set being copied if
			// From is (transitively) reachable from To.
			s.scratch = s.sets[act.From].AppendMembers(s.scratch[:0])
			for _, id := range s.scratch {
				s.insert(act.To, effects.ID(id))
			}
		case effects.ActAddAtom:
			s.insert(act.V, s.internCanon(act.A))
		}
	}
}
