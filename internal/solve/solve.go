package solve

import (
	"fmt"
	"sort"

	"localalias/internal/effects"
	"localalias/internal/locs"
)

// Result is the least solution of a constraint system, together with
// the conditional constraints that fired while computing it.
type Result struct {
	sys  *effects.System
	ls   *locs.Store
	sets []map[effects.Atom]bool

	// Fired lists the conditional constraints whose triggers became
	// true, in firing order. Inference interprets these: a fired
	// "failure" conditional unified a candidate's ρ and ρ′, turning
	// the candidate back into a plain let.
	Fired []*effects.Cond

	// AtomsPropagated counts insert operations (for benchmarks).
	AtomsPropagated int
}

// Atoms returns the canonical atoms of v's solution, sorted.
func (r *Result) Atoms(v effects.Var) []effects.Atom {
	var out []effects.Atom
	seen := make(map[effects.Atom]bool)
	for a := range r.sets[v] {
		ca := effects.Atom{Kind: a.Kind, Loc: r.ls.Find(a.Loc)}
		if !seen[ca] {
			seen[ca] = true
			out = append(out, ca)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Loc != out[j].Loc {
			return out[i].Loc < out[j].Loc
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// ContainsLoc reports whether v's solution has any atom over loc.
func (r *Result) ContainsLoc(v effects.Var, loc locs.Loc) bool {
	rho := r.ls.Find(loc)
	for a := range r.sets[v] {
		if r.ls.Find(a.Loc) == rho {
			return true
		}
	}
	return false
}

// ContainsAtom reports whether v's solution has the atom (canonical
// location comparison).
func (r *Result) ContainsAtom(v effects.Var, a effects.Atom) bool {
	rho := r.ls.Find(a.Loc)
	for b := range r.sets[v] {
		if b.Kind == a.Kind && r.ls.Find(b.Loc) == rho {
			return true
		}
	}
	return false
}

// Violations evaluates every check of the system — disinclusions,
// kind-absence checks and pair checks — against the least solution.
func (r *Result) Violations() []Violation {
	var out []Violation
	for _, ni := range r.sys.NotIns {
		if r.ContainsLoc(ni.V, ni.Loc) {
			out = append(out, Violation{
				Site:   ni.Site,
				What:   ni.What,
				Detail: fmt.Sprintf("ρ%d (%s) is in %s", ni.Loc, r.ls.Name(ni.Loc), r.sys.VarName(ni.V)),
			})
		}
	}
	for _, kn := range r.sys.KindNotIns {
		for a := range r.sets[kn.V] {
			if a.Kind == kn.Kind {
				out = append(out, Violation{
					Site:   kn.Site,
					What:   kn.What,
					Detail: fmt.Sprintf("%s(%s) is in %s", a.Kind, r.ls.Name(a.Loc), r.sys.VarName(kn.V)),
				})
				break
			}
		}
	}
	for _, pn := range r.sys.PairNotIns {
		for a := range r.sets[pn.VA] {
			if a.Kind != pn.KindA {
				continue
			}
			if r.hasKindLocResult(pn.VB, pn.KindB, a.Loc) {
				out = append(out, Violation{
					Site: pn.Site,
					What: pn.What,
					Detail: fmt.Sprintf("%s(%s) in %s and %s of it in %s",
						pn.KindA, r.ls.Name(a.Loc), r.sys.VarName(pn.VA),
						pn.KindB, r.sys.VarName(pn.VB)),
				})
				break
			}
		}
	}
	return out
}

func (r *Result) hasKindLocResult(v effects.Var, k effects.Kind, loc locs.Loc) bool {
	rho := r.ls.Find(loc)
	for a := range r.sets[v] {
		if a.Kind == k && r.ls.Find(a.Loc) == rho {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Solver

type solver struct {
	g   *graph
	ls  *locs.Store
	res *Result

	// Dynamic graph state (conditionals add edges and atoms).
	out   [][]target
	sets  []map[effects.Atom]bool
	left  []map[effects.Atom]bool
	right []map[locs.Loc]bool

	// queue of pending insertions.
	queue []qitem

	// pending holds conds not yet fired; condList preserves creation
	// order for deterministic rechecks; watch indexes conds by the
	// effect variable(s) their trigger observes, so an atom arrival
	// only examines the conds that could care.
	pending  map[*effects.Cond]bool
	condList []*effects.Cond
	watch    map[effects.Var][]*effects.Cond

	unified bool // set by the locs OnUnify callback
}

type qitem struct {
	v effects.Var
	a effects.Atom
}

// Solve computes the least solution of sys, firing conditional
// constraints as their triggers become true. The algorithm is the
// paper's worklist scheme: initial propagation costs O(n·|locs|); each
// of the O(n) possible location unifications triggers O(n) of
// re-propagation, for the stated O(n²) bound.
func Solve(sys *effects.System) *Result {
	g := newGraph(sys)
	s := &solver{
		g:   g,
		ls:  sys.Locs,
		out: g.out,
	}
	s.res = &Result{sys: sys, ls: sys.Locs}
	s.sets = make([]map[effects.Atom]bool, g.nvar)
	for i := range s.sets {
		s.sets[i] = make(map[effects.Atom]bool)
	}
	s.left = make([]map[effects.Atom]bool, len(g.inter))
	s.right = make([]map[locs.Loc]bool, len(g.inter))
	for i := range g.inter {
		s.left[i] = make(map[effects.Atom]bool)
		s.right[i] = make(map[locs.Loc]bool)
	}
	s.pending = make(map[*effects.Cond]bool, len(sys.Conds))
	s.condList = sys.Conds
	s.watch = make(map[effects.Var][]*effects.Cond)
	for _, c := range sys.Conds {
		s.pending[c] = true
		for _, v := range triggerVars(c.Trigger) {
			s.watch[v] = append(s.watch[v], c)
		}
	}

	sys.Locs.OnUnify(func(winner, loser locs.Loc) { s.unified = true })

	// Seed the graph.
	for v := range g.seeds {
		for _, a := range g.seeds[v] {
			s.insert(effects.Var(v), a)
		}
	}
	for i, in := range g.inter {
		for _, a := range in.leftSeeds {
			s.arriveLeft(int32(i), a)
		}
		for _, a := range in.rightSeeds {
			s.arriveRight(int32(i), a)
		}
	}

	for {
		s.drain()
		// Propagation quiesced. If a unification happened, atoms with
		// stale locations must be re-canonicalized and intersection
		// gates re-examined; triggers may also newly match.
		if s.unified {
			s.unified = false
			s.recanonicalize()
			s.recheckConds()
			if len(s.queue) > 0 || s.unified {
				continue
			}
		}
		break
	}

	s.res.sets = s.sets
	return s.res
}

func (s *solver) drain() {
	for len(s.queue) > 0 {
		it := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.propagate(it.v, it.a)
	}
}

// insert adds atom a (canonicalized) to v, queueing propagation.
func (s *solver) insert(v effects.Var, a effects.Atom) {
	a.Loc = s.ls.Find(a.Loc)
	if s.sets[v][a] {
		return
	}
	s.sets[v][a] = true
	s.res.AtomsPropagated++
	s.queue = append(s.queue, qitem{v: v, a: a})
}

// propagate pushes a (already recorded in v) along v's out-edges and
// checks triggers watching v.
func (s *solver) propagate(v effects.Var, a effects.Atom) {
	for _, t := range s.out[v] {
		switch t.kind {
		case toVar:
			s.insert(effects.Var(t.idx), a)
		case toLeft:
			s.arriveLeft(t.idx, a)
		case toRight:
			s.arriveRight(t.idx, a)
		}
	}
	s.checkTriggersFor(v, a)
}

func (s *solver) arriveLeft(i int32, a effects.Atom) {
	a.Loc = s.ls.Find(a.Loc)
	if s.left[i][a] {
		return
	}
	s.left[i][a] = true
	if s.right[i][a.Loc] {
		s.insert(s.g.inter[i].Out, a)
	}
}

func (s *solver) arriveRight(i int32, a effects.Atom) {
	rho := s.ls.Find(a.Loc)
	if s.right[i][rho] {
		return
	}
	s.right[i][rho] = true
	for b := range s.left[i] {
		if s.ls.Find(b.Loc) == rho {
			s.insert(s.g.inter[i].Out, b)
		}
	}
}

// recanonicalize rewrites every stored atom to its current
// representative, re-flooding anything whose identity changed and
// re-examining intersection gates. A full pass costs O(total atoms);
// it runs once per unification, matching the paper's O(n) "extra work
// to recompute reachability for the unified locations".
func (s *solver) recanonicalize() {
	for v := range s.sets {
		for a := range s.sets[v] {
			if c := s.ls.Find(a.Loc); c != a.Loc {
				delete(s.sets[v], a)
				a2 := effects.Atom{Kind: a.Kind, Loc: c}
				if !s.sets[v][a2] {
					s.sets[v][a2] = true
					// Re-propagate under the new identity: dedupe
					// downstream uses canonical atoms, so merged
					// atoms must flow again.
					s.queue = append(s.queue, qitem{v: effects.Var(v), a: a2})
				}
			}
		}
	}
	for i := range s.left {
		for a := range s.left[i] {
			if c := s.ls.Find(a.Loc); c != a.Loc {
				delete(s.left[i], a)
				s.left[i][effects.Atom{Kind: a.Kind, Loc: c}] = true
			}
		}
		for rho := range s.right[i] {
			if c := s.ls.Find(rho); c != rho {
				delete(s.right[i], rho)
				s.right[i][c] = true
			}
		}
		// A merge can newly unlock buffered left atoms: re-examine
		// the gate unconditionally.
		for a := range s.left[i] {
			if s.right[i][s.ls.Find(a.Loc)] {
				s.insert(s.g.inter[i].Out, a)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Conditional constraints

// triggerVars lists the effect variables a trigger observes.
func triggerVars(t effects.Trigger) []effects.Var {
	switch t := t.(type) {
	case effects.LocIn:
		return []effects.Var{t.V}
	case effects.AtomIn:
		return []effects.Var{t.V}
	case effects.KindIn:
		return []effects.Var{t.V}
	case effects.PairIn:
		if t.VA == t.VB {
			return []effects.Var{t.VA}
		}
		return []effects.Var{t.VA, t.VB}
	default:
		return nil
	}
}

// checkTriggersFor tests unfired conditionals that could be enabled
// by atom a arriving in v.
func (s *solver) checkTriggersFor(v effects.Var, a effects.Atom) {
	ws := s.watch[v]
	for _, c := range ws {
		if !s.pending[c] {
			continue
		}
		if s.triggerMatches(c.Trigger, v, a) {
			s.fire(c)
		}
	}
}

// recheckConds re-tests unfired conditionals against the full current
// solution (needed after unifications, which can make triggers true
// without any new atom arriving). Creation order keeps firing — and
// hence diagnostics — deterministic.
func (s *solver) recheckConds() {
	for _, c := range s.condList {
		if !s.pending[c] {
			continue
		}
		if s.triggerHolds(c.Trigger) {
			s.fire(c)
		}
	}
}

func (s *solver) triggerMatches(t effects.Trigger, v effects.Var, a effects.Atom) bool {
	switch t := t.(type) {
	case effects.LocIn:
		return t.V == v && s.ls.Find(t.Loc) == s.ls.Find(a.Loc)
	case effects.AtomIn:
		return t.V == v && t.Kind == a.Kind && s.ls.Find(t.Loc) == s.ls.Find(a.Loc)
	case effects.KindIn:
		return t.V == v && t.Kind == a.Kind
	case effects.PairIn:
		if t.VA == v && a.Kind == t.KindA {
			return s.hasKindLoc(t.VB, t.KindB, a.Loc)
		}
		if t.VB == v && a.Kind == t.KindB {
			return s.hasKindLoc(t.VA, t.KindA, a.Loc)
		}
		return false
	default:
		return false
	}
}

// triggerHolds tests a trigger against the whole current solution.
func (s *solver) triggerHolds(t effects.Trigger) bool {
	switch t := t.(type) {
	case effects.LocIn:
		rho := s.ls.Find(t.Loc)
		for a := range s.sets[t.V] {
			if s.ls.Find(a.Loc) == rho {
				return true
			}
		}
	case effects.AtomIn:
		rho := s.ls.Find(t.Loc)
		for a := range s.sets[t.V] {
			if a.Kind == t.Kind && s.ls.Find(a.Loc) == rho {
				return true
			}
		}
	case effects.KindIn:
		for a := range s.sets[t.V] {
			if a.Kind == t.Kind {
				return true
			}
		}
	case effects.PairIn:
		for a := range s.sets[t.VA] {
			if a.Kind == t.KindA && s.hasKindLoc(t.VB, t.KindB, a.Loc) {
				return true
			}
		}
	}
	return false
}

func (s *solver) hasKindLoc(v effects.Var, k effects.Kind, loc locs.Loc) bool {
	rho := s.ls.Find(loc)
	for a := range s.sets[v] {
		if a.Kind == k && s.ls.Find(a.Loc) == rho {
			return true
		}
	}
	return false
}

// fire runs the actions of c and marks it fired.
func (s *solver) fire(c *effects.Cond) {
	delete(s.pending, c)
	s.res.Fired = append(s.res.Fired, c)
	for _, act := range c.Actions {
		switch act := act.(type) {
		case effects.ActUnify:
			s.ls.Unify(act.A, act.B)
		case effects.ActIncl:
			s.out[act.From] = append(s.out[act.From], target{kind: toVar, idx: int32(act.To)})
			for a := range s.sets[act.From] {
				s.insert(act.To, a)
			}
		case effects.ActAddAtom:
			s.insert(act.V, act.A)
		}
	}
}
