package solve

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"localalias/internal/bitset"
	"localalias/internal/effects"
	"localalias/internal/faults"
	"localalias/internal/locs"
	"localalias/internal/obs"
)

// maxComponentSpans bounds how many per-component spans one parallel
// solve records: only the heaviest components (the schedule's
// critical path) are worth trace real estate, and a pathological
// partition with thousands of singleton components must not flood the
// request's trace.
const maxComponentSpans = 64

// This file is the parallel driver behind SolveWorkers: it runs one
// unit solver per partition component on a bounded pool of worker
// goroutines and merges the per-unit results into a Result
// indistinguishable from the sequential solver's.
//
// Sharing discipline (what makes -race quiet without locks on the hot
// path):
//
//   - The graph, partition, and constraint system are read-only.
//   - sets/left/right/watch are shared arrays indexed by variable or
//     inode; a unit only ever touches rows of its own component, and
//     components partition those index spaces, so all writes are
//     index-disjoint.
//   - The location store is Compress()ed first; after that, Find is a
//     pure read for every class that is not unified again, and
//     solve-time unification only touches volatile classes, each of
//     which belongs to exactly one component (see partition.go).
//     Unify's writes are therefore index-disjoint too, and its
//     shared counter is atomic.
//   - Each unit has its own interner: atom IDs are component-local,
//     so every per-variable ID sequence matches the sequential
//     solver's and the accessors can translate per component.
//
// Determinism: components can't influence each other, so each unit's
// run replays exactly the sequential solver's event subsequence for
// that component, no matter how units are scheduled onto workers.
// Merging is then pure bookkeeping — sums for the work counters, max
// for the re-canonicalization rounds (the sequential loop runs one
// global round per quiescent point, aligned across components), a
// distinct-atom union for Stats.Atoms, and per-component firing lists
// concatenated in component order.

// solveParallel solves the partitioned system on up to `workers`
// goroutines. Panics and deadline aborts inside a worker are captured
// with their stack and re-thrown on the calling goroutine — the
// deterministic choice being the lowest-numbered failing component —
// so faults.Run sees exactly what a sequential solve would have
// thrown.
func solveParallel(ctx context.Context, sys *effects.System, g *graph, p *partition, workers int, sc *scratch) *Result {
	ls := sys.Locs
	ls.Compress()

	nvar := g.nvar
	sets := make([]bitset.Set, nvar)
	left := make([]bitset.Set, len(g.inter))
	right := make([]bitset.Set, len(g.inter))
	watch := make([][]int32, nvar)

	units := make([]*solver, p.ncomp)
	for c := range units {
		u := &solver{
			g:        g,
			ls:       ls,
			in:       getInterner(),
			ctx:      ctx,
			myVars:   p.vars[p.varStart[c]:p.varStart[c+1]],
			myInodes: p.inodes[p.inodeStart[c]:p.inodeStart[c+1]],
			sets:     sets,
			left:     left,
			right:    right,
			watch:    watch,
		}
		ci := p.conds[p.condStart[c]:p.condStart[c+1]]
		u.conds = make([]*effects.Cond, len(ci))
		for k, gi := range ci {
			u.conds[k] = sys.Conds[gi]
		}
		u.pending = make([]bool, len(u.conds))
		u.obsUnify = func(winner, loser locs.Loc) {
			u.unified = true
			u.stats.Unifications++
			u.losers = append(u.losers, loser)
		}
		units[c] = u
	}

	// Heaviest components first, so a giant component starts
	// immediately instead of serializing behind the tail.
	weight := func(c int) int {
		return int(p.varStart[c+1]-p.varStart[c]) +
			int(p.inodeStart[c+1]-p.inodeStart[c]) +
			int(p.condStart[c+1]-p.condStart[c])
	}
	order := make([]int, p.ncomp)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		wi, wj := weight(order[i]), weight(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})

	nw := workers
	if nw > p.ncomp {
		nw = p.ncomp
	}
	// Per-component spans, recorded from worker goroutines with an
	// explicit parent (the enclosing solve/module span carried by ctx).
	// Only the heaviest components get spans — they are the schedule's
	// critical path, and order[] is already weight-sorted, so the gate
	// is a simple index check.
	trace, parentSpan := obs.SpanFromContext(ctx)
	panics := make([]any, p.ncomp)
	var cursor atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= p.ncomp {
					return
				}
				c := order[i]
				if trace != nil && i < maxComponentSpans {
					start := time.Now()
					runUnit(units[c], &panics[c])
					trace.AddChild(parentSpan, "component", "solve", start, time.Since(start),
						"component", strconv.Itoa(c), "weight", strconv.Itoa(weight(c)))
					continue
				}
				runUnit(units[c], &panics[c])
			}
		}()
	}
	wg.Wait()

	for c := 0; c < p.ncomp; c++ {
		if panics[c] != nil {
			panic(panics[c])
		}
	}

	res := &Result{
		sys:    sys,
		ls:     ls,
		sets:   sets,
		parts:  make([]*effects.Interner, p.ncomp),
		partOf: p.compOf,
	}
	var atomKeys bitset.Set
	for c, u := range units {
		res.parts[c] = u.in
		res.Fired = append(res.Fired, u.fired...)
		res.Stats.AtomsPropagated += u.stats.AtomsPropagated
		res.Stats.IntersectionArrivals += u.stats.IntersectionArrivals
		res.Stats.CondFirings += u.stats.CondFirings
		res.Stats.Unifications += u.stats.Unifications
		if u.stats.Recanonicalizations > res.Stats.Recanonicalizations {
			res.Stats.Recanonicalizations = u.stats.Recanonicalizations
		}
		// Stats.Atoms counts distinct interned atoms. A location can be
		// mentioned by several components (only volatile classes are
		// exclusive), so the same atom may be interned in more than one
		// unit; count the union, exactly as one shared table would
		// have.
		for i := 0; i < u.in.Len(); i++ {
			a := u.in.Atom(effects.ID(i))
			atomKeys.Add(int(a.Loc)*4 + int(a.Kind))
		}
	}
	res.Stats.Atoms = atomKeys.Len()
	res.Stats.Vars = nvar
	res.AtomsPropagated = res.Stats.AtomsPropagated

	st := &res.Stats
	a := obs.App()
	a.RecordSolve(st.AtomsPropagated, st.IntersectionArrivals,
		st.CondFirings, st.Unifications, st.Recanonicalizations)
	sizes := make([]int, p.ncomp)
	for c := range sizes {
		sizes[c] = weight(c)
	}
	a.RecordSolvePartition(nw, sizes)
	return res
}

// testUnitHook, when non-nil, runs at the start of every unit solve on
// its worker goroutine, inside the panic-capture guard. It is the seam
// the fault-containment tests use to make one component panic mid-solve
// without touching the real propagation code.
var testUnitHook func(u *solver)

// runUnit drains one component, capturing any panic (with the
// worker's stack) into its slot instead of unwinding the worker.
func runUnit(u *solver, slot *any) {
	defer func() {
		if p := recover(); p != nil {
			*slot = faults.CaptureWorkerPanic(p)
		}
	}()
	if testUnitHook != nil {
		testUnitHook(u)
	}
	u.preInternSeeds()
	u.buildWatch()
	u.seed()
	u.run()
}
