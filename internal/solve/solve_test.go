package solve

import (
	"testing"

	"localalias/internal/effects"
	"localalias/internal/locs"
	"localalias/internal/source"
)

func loc(ls *locs.Store, n string) locs.Loc { return ls.Fresh(n) }

func atom(k effects.Kind, l locs.Loc) effects.Atom { return effects.Atom{Kind: k, Loc: l} }

// chain builds ρ ∈ ε0 ⊆ ε1 ⊆ ... ⊆ εn and returns the vars.
func chain(s *effects.System, ls *locs.Store, n int) (locs.Loc, []effects.Var) {
	rho := ls.Fresh("rho")
	vars := make([]effects.Var, n)
	for i := range vars {
		vars[i] = s.Fresh("e")
	}
	s.AddAtom(atom(effects.Read, rho), vars[0])
	for i := 1; i < n; i++ {
		s.AddVarIncl(vars[i-1], vars[i])
	}
	return rho, vars
}

func TestCheckSatReachable(t *testing.T) {
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho, vars := chain(s, ls, 4)
	s.AddNotIn(rho, vars[3], source.NoSpan, "test")
	vs := Check(s)
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %v", vs)
	}
}

func TestCheckSatUnreachable(t *testing.T) {
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho, _ := chain(s, ls, 4)
	other := s.Fresh("island")
	s.AddNotIn(rho, other, source.NoSpan, "test")
	if vs := Check(s); len(vs) != 0 {
		t.Fatalf("want no violations, got %v", vs)
	}
}

func TestCheckSatIntersectionGate(t *testing.T) {
	// (eL ∩ eR) ⊆ out: rho reaches out only if it reaches both sides.
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho := ls.Fresh("rho")
	eL := s.Fresh("L")
	eR := s.Fresh("R")
	out := s.Fresh("out")
	s.AddIncl(effects.Inter{L: effects.VarRef{V: eL}, R: effects.VarRef{V: eR}}, out)
	s.AddAtom(atom(effects.Write, rho), eL)
	// Only the left side sees rho: the Count(I)==2 condition of
	// Figure 5 must block it.
	s.AddNotIn(rho, out, source.NoSpan, "blocked")
	if vs := Check(s); len(vs) != 0 {
		t.Fatalf("intersection must gate: %v", vs)
	}
	// Now let the right side see rho too.
	s.AddAtom(atom(effects.LocAtom, rho), eR)
	s2 := Check(s)
	if len(s2) != 1 {
		t.Fatalf("both sides reached: want violation, got %v", s2)
	}
}

func TestCheckSatDiamond(t *testing.T) {
	// rho flows into out through two paths; still one violation.
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho := ls.Fresh("rho")
	a, b, out := s.Fresh("a"), s.Fresh("b"), s.Fresh("out")
	src := s.Fresh("src")
	s.AddAtom(atom(effects.Read, rho), src)
	s.AddVarIncl(src, a)
	s.AddVarIncl(src, b)
	s.AddVarIncl(a, out)
	s.AddVarIncl(b, out)
	s.AddNotIn(rho, out, source.NoSpan, "diamond")
	if vs := Check(s); len(vs) != 1 {
		t.Fatalf("want 1 violation, got %v", vs)
	}
}

func TestCheckSatRespectsUnification(t *testing.T) {
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho1 := ls.Fresh("rho1")
	rho2 := ls.Fresh("rho2")
	e := s.Fresh("e")
	s.AddAtom(atom(effects.Read, rho2), e)
	s.AddNotIn(rho1, e, source.NoSpan, "pre-unify")
	if vs := Check(s); len(vs) != 0 {
		t.Fatal("distinct locations must not collide")
	}
	ls.Unify(rho1, rho2)
	if vs := Check(s); len(vs) != 1 {
		t.Fatal("after unification the check must fail")
	}
}

func TestCheckerReusableManyQueries(t *testing.T) {
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho, vars := chain(s, ls, 10)
	other := ls.Fresh("other")
	s.AddAtom(atom(effects.Read, other), vars[5])
	c := NewChecker(s)
	for i := 0; i < 100; i++ {
		if c.Sat(effects.NotIn{Loc: rho, V: vars[9]}) {
			t.Fatal("rho must reach the chain end")
		}
		if !c.Sat(effects.NotIn{Loc: other, V: vars[2]}) {
			t.Fatal("other enters at 5; must not reach 2")
		}
		if c.Sat(effects.NotIn{Loc: other, V: vars[7]}) {
			t.Fatal("other must reach 7")
		}
	}
}

func TestSolveLeastSolution(t *testing.T) {
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho, vars := chain(s, ls, 3)
	r := Solve(s)
	for _, v := range vars {
		if !r.ContainsLoc(v, rho) {
			t.Fatalf("rho must be in every chain var")
		}
	}
	as := r.Atoms(vars[2])
	if len(as) != 1 || as[0].Kind != effects.Read {
		t.Fatalf("atoms: %v", as)
	}
}

func TestSolveIntersectionKinds(t *testing.T) {
	// (Down): effect atoms filtered by live locations, with bare
	// location atoms not polluting the output.
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	kept := ls.Fresh("kept")
	dropped := ls.Fresh("dropped")
	body := s.Fresh("body")
	live := s.Fresh("live")
	out := s.Fresh("out")
	s.AddAtom(atom(effects.Write, kept), body)
	s.AddAtom(atom(effects.Read, dropped), body)
	s.AddAtom(atom(effects.LocAtom, kept), live)
	s.AddIncl(effects.Inter{L: effects.VarRef{V: body}, R: effects.VarRef{V: live}}, out)
	r := Solve(s)
	if !r.ContainsAtom(out, atom(effects.Write, kept)) {
		t.Error("write(kept) must survive (Down)")
	}
	if r.ContainsLoc(out, dropped) {
		t.Error("read(dropped) must be removed by (Down)")
	}
	if r.ContainsAtom(out, atom(effects.LocAtom, kept)) {
		t.Error("locs(Γ,τ) atoms must not leak into the effect")
	}
}

func TestSolveViolations(t *testing.T) {
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho, vars := chain(s, ls, 2)
	s.AddNotIn(rho, vars[1], source.NoSpan, "hit")
	s.AddNotIn(ls.Fresh("free"), vars[1], source.NoSpan, "miss")
	r := Solve(s)
	vs := r.Violations()
	if len(vs) != 1 || vs[0].What != "hit" {
		t.Fatalf("violations: %v", vs)
	}
}

func TestSolveCondLocInFires(t *testing.T) {
	// rho ∈ e ⇒ unify(a, b).
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho := ls.Fresh("rho")
	a, b := ls.Fresh("a"), ls.Fresh("b")
	e := s.Fresh("e")
	s.AddAtom(atom(effects.Write, rho), e)
	s.AddCond(&effects.Cond{
		Trigger: effects.LocIn{Loc: rho, V: e},
		Actions: []effects.Action{effects.ActUnify{A: a, B: b}},
		Reason:  "rho used",
	})
	r := Solve(s)
	if len(r.Fired) != 1 {
		t.Fatalf("cond must fire once, fired %d", len(r.Fired))
	}
	if !ls.Same(a, b) {
		t.Error("action must unify a and b")
	}
}

func TestSolveCondNotFired(t *testing.T) {
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho := ls.Fresh("rho")
	other := ls.Fresh("other")
	a, b := ls.Fresh("a"), ls.Fresh("b")
	e := s.Fresh("e")
	s.AddAtom(atom(effects.Write, other), e)
	s.AddCond(&effects.Cond{
		Trigger: effects.LocIn{Loc: rho, V: e},
		Actions: []effects.Action{effects.ActUnify{A: a, B: b}},
	})
	r := Solve(s)
	if len(r.Fired) != 0 || ls.Same(a, b) {
		t.Error("condition must not fire")
	}
}

func TestSolveCondCascade(t *testing.T) {
	// Firing one conditional unifies locations, which makes a second
	// conditional's trigger true: the paper's worklist cascade.
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho1 := ls.Fresh("rho1")
	rho2 := ls.Fresh("rho2")
	x, y := ls.Fresh("x"), ls.Fresh("y")
	e := s.Fresh("e")
	s.AddAtom(atom(effects.Read, rho1), e)
	// rho1 ∈ e ⇒ unify(rho1, rho2)
	s.AddCond(&effects.Cond{
		Trigger: effects.LocIn{Loc: rho1, V: e},
		Actions: []effects.Action{effects.ActUnify{A: rho1, B: rho2}},
	})
	// rho2 ∈ e ⇒ unify(x, y) — true only after the first fires.
	s.AddCond(&effects.Cond{
		Trigger: effects.LocIn{Loc: rho2, V: e},
		Actions: []effects.Action{effects.ActUnify{A: x, B: y}},
	})
	r := Solve(s)
	if len(r.Fired) != 2 {
		t.Fatalf("cascade: want 2 fired, got %d", len(r.Fired))
	}
	if !ls.Same(x, y) {
		t.Error("second condition's action must run")
	}
}

func TestSolveCondAtomInAndAddAtom(t *testing.T) {
	// write(rho') ∈ e ⇒ {write(rho)} ⊆ pi (the conditional restrict
	// effect).
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho := ls.Fresh("rho")
	rhoP := ls.Fresh("rho'")
	e := s.Fresh("e")
	pi := s.Fresh("pi")
	s.AddAtom(atom(effects.Write, rhoP), e)
	s.AddCond(&effects.Cond{
		Trigger: effects.AtomIn{Kind: effects.Write, Loc: rhoP, V: e},
		Actions: []effects.Action{effects.ActAddAtom{A: atom(effects.Write, rho), V: pi}},
	})
	// A read must NOT trigger the write conditional.
	s.AddCond(&effects.Cond{
		Trigger: effects.AtomIn{Kind: effects.Alloc, Loc: rhoP, V: e},
		Actions: []effects.Action{effects.ActAddAtom{A: atom(effects.Alloc, rho), V: pi}},
	})
	r := Solve(s)
	if !r.ContainsAtom(pi, atom(effects.Write, rho)) {
		t.Error("write relay must fire")
	}
	if r.ContainsAtom(pi, atom(effects.Alloc, rho)) {
		t.Error("alloc relay must not fire")
	}
}

func TestSolveCondKindIn(t *testing.T) {
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho := ls.Fresh("rho")
	a, b := ls.Fresh("a"), ls.Fresh("b")
	e := s.Fresh("e")
	s.AddAtom(atom(effects.Alloc, rho), e)
	s.AddCond(&effects.Cond{
		Trigger: effects.KindIn{Kind: effects.Alloc, V: e},
		Actions: []effects.Action{effects.ActUnify{A: a, B: b}},
	})
	r := Solve(s)
	if len(r.Fired) != 1 || !ls.Same(a, b) {
		t.Error("any alloc atom must trigger KindIn")
	}
}

func TestSolveCondPairIn(t *testing.T) {
	// read(r) ∈ e1 ∧ write(r) ∈ e2 ⇒ unify — the referential
	// transparency premise.
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	r1 := ls.Fresh("r1")
	r2 := ls.Fresh("r2")
	a, b := ls.Fresh("a"), ls.Fresh("b")
	e1, e2 := s.Fresh("e1"), s.Fresh("e2")
	s.AddAtom(atom(effects.Read, r1), e1)
	s.AddAtom(atom(effects.Write, r2), e2) // different loc: no fire
	s.AddCond(&effects.Cond{
		Trigger: effects.PairIn{KindA: effects.Read, VA: e1, KindB: effects.Write, VB: e2},
		Actions: []effects.Action{effects.ActUnify{A: a, B: b}},
	})
	r := Solve(s)
	if len(r.Fired) != 0 {
		t.Fatal("different locations must not pair")
	}

	// Same locations (via unification) must fire on recheck.
	ls2 := locs.NewStore()
	s2 := effects.NewSystem(ls2)
	p1 := ls2.Fresh("p1")
	p2 := ls2.Fresh("p2")
	c, d := ls2.Fresh("c"), ls2.Fresh("d")
	f1, f2 := s2.Fresh("f1"), s2.Fresh("f2")
	s2.AddAtom(atom(effects.Read, p1), f1)
	s2.AddAtom(atom(effects.Write, p1), f2)
	s2.AddCond(&effects.Cond{
		Trigger: effects.PairIn{KindA: effects.Read, VA: f1, KindB: effects.Write, VB: f2},
		Actions: []effects.Action{effects.ActUnify{A: c, B: d}},
	})
	_ = p2
	r2v := Solve(s2)
	if len(r2v.Fired) != 1 || !ls2.Same(c, d) {
		t.Error("matching read/write pair must fire")
	}
}

func TestSolveCondActIncl(t *testing.T) {
	// trigger ⇒ (from ⊆ to): existing and future atoms both flow.
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho := ls.Fresh("rho")
	x := ls.Fresh("x")
	from, to, e := s.Fresh("from"), s.Fresh("to"), s.Fresh("e")
	s.AddAtom(atom(effects.Read, x), from)
	s.AddAtom(atom(effects.Write, rho), e)
	s.AddCond(&effects.Cond{
		Trigger: effects.LocIn{Loc: rho, V: e},
		Actions: []effects.Action{effects.ActIncl{From: from, To: to}},
	})
	r := Solve(s)
	if !r.ContainsAtom(to, atom(effects.Read, x)) {
		t.Error("ActIncl must copy existing atoms")
	}
}

func TestSolveUnifyMergesAtomsAcrossSets(t *testing.T) {
	// After unify(r1, r2), an intersection gated on r2 must pass an
	// atom over r1.
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	r1 := ls.Fresh("r1")
	r2 := ls.Fresh("r2")
	trig := ls.Fresh("trig")
	body, live, out, e := s.Fresh("body"), s.Fresh("live"), s.Fresh("out"), s.Fresh("e")
	s.AddAtom(atom(effects.Write, r1), body)
	s.AddAtom(atom(effects.LocAtom, r2), live)
	s.AddIncl(effects.Inter{L: effects.VarRef{V: body}, R: effects.VarRef{V: live}}, out)
	s.AddAtom(atom(effects.Read, trig), e)
	s.AddCond(&effects.Cond{
		Trigger: effects.LocIn{Loc: trig, V: e},
		Actions: []effects.Action{effects.ActUnify{A: r1, B: r2}},
	})
	r := Solve(s)
	if !r.ContainsLoc(out, r1) {
		t.Error("post-unification the gate must open")
	}
}

func TestSolveBackwardPrefilter(t *testing.T) {
	ls := locs.NewStore()
	s := effects.NewSystem(ls)
	rho, vars := chain(s, ls, 5)
	island := s.Fresh("island")
	c := NewChecker(s)
	reach := c.ReachableLocs(vars[4])
	if !reach.Has(int(ls.Find(rho))) {
		t.Error("backward search must find rho behind the chain")
	}
	if got := c.ReachableLocs(island); !got.Empty() {
		t.Errorf("island has no sources, got %d locs", got.Len())
	}
	if !c.SatBackward(effects.NotIn{Loc: rho, V: island}) {
		t.Error("SatBackward must succeed via prefilter")
	}
	if c.SatBackward(effects.NotIn{Loc: rho, V: vars[4]}) {
		t.Error("SatBackward must still detect real violations")
	}
}

func TestSolveDeterministic(t *testing.T) {
	build := func() (*locs.Store, *effects.System, []effects.Var) {
		ls := locs.NewStore()
		s := effects.NewSystem(ls)
		var vars []effects.Var
		for i := 0; i < 20; i++ {
			vars = append(vars, s.Fresh("v"))
		}
		var rs []locs.Loc
		for i := 0; i < 10; i++ {
			rs = append(rs, ls.Fresh("r"))
		}
		for i := 0; i < 10; i++ {
			s.AddAtom(atom(effects.Kind(i%4), rs[i]), vars[i])
			s.AddVarIncl(vars[i], vars[(i*7)%20])
			s.AddVarIncl(vars[i], vars[10+i%10])
		}
		return ls, s, vars
	}
	_, s1, v1 := build()
	_, s2, v2 := build()
	r1 := Solve(s1)
	r2 := Solve(s2)
	for i := range v1 {
		a1 := r1.Atoms(v1[i])
		a2 := r2.Atoms(v2[i])
		if len(a1) != len(a2) {
			t.Fatalf("var %d: nondeterministic solution sizes %d vs %d", i, len(a1), len(a2))
		}
		for j := range a1 {
			if a1[j] != a2[j] {
				t.Fatalf("var %d atom %d: %v vs %v", i, j, a1[j], a2[j])
			}
		}
	}
}
