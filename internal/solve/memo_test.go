package solve_test

// Differential tests for the component-summary memo (solve.Memo): a
// memoized solve — cold (populating) or warm (replaying) — must be
// indistinguishable from the sequential solver, exactly as the
// partitioned solver is: identical per-variable atom lists, identical
// violations, identical Stats, same fired-cond sets. On top of that,
// the memo's whole point is position independence: an identical
// program whose source merely shifted (a comment added above it) must
// replay every component without solving anything.

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"localalias/internal/core"
	"localalias/internal/effects"
	"localalias/internal/infer"
	"localalias/internal/progen"
	"localalias/internal/solve"
)

// solveMemoized runs SolveOpts with the given memo and 4 workers,
// returning the result and the per-run reuse counters.
func solveMemoized(sys *effects.System, memo *solve.Memo) (*solve.Result, *solve.MemoCounters) {
	var c solve.MemoCounters
	res := solve.SolveOpts(context.Background(), sys, solve.Options{
		Workers:  4,
		Memo:     memo,
		Counters: &c,
	})
	return res, &c
}

// TestMemoMatchesSequentialQuick checks both memo phases against the
// sequential solver on random multi-component systems: the cold run
// (every component solved fresh and recorded) and the warm run (every
// component replayed from its summary) must each reproduce the
// sequential result exactly.
func TestMemoMatchesSequentialQuick(t *testing.T) {
	prop := func(seed int64) bool {
		memo := solve.NewMemo(0)
		seqSys := randomClusterSystem(seed, 4)
		seq := solve.Solve(seqSys)

		coldSys := randomClusterSystem(seed, 4)
		cold, _ := solveMemoized(coldSys, memo)
		if !requireExactMatch(t, fmt.Sprintf("seed %d cold", seed), seqSys, seq, coldSys, cold) {
			return false
		}

		warmSys := randomClusterSystem(seed, 4)
		warm, wc := solveMemoized(warmSys, memo)
		if !requireExactMatch(t, fmt.Sprintf("seed %d warm", seed), seqSys, seq, warmSys, warm) {
			return false
		}
		if wc.Replayed.Load() == 0 {
			t.Logf("seed %d: warm run replayed no components", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMemoMatchesSequentialProgen runs the full inference pipeline on
// random well-typed programs and requires cold and warm memoized
// solves to reproduce the sequential solver exactly, and the
// reference solver up to set equality.
func TestMemoMatchesSequentialProgen(t *testing.T) {
	n := int64(200)
	if testing.Short() {
		n = 40
	}
	build := func(seed int64) *effects.System {
		src := progen.Generate(seed)
		mod, err := core.LoadModule("p.mc", src)
		if err != nil {
			t.Fatalf("seed %d: progen program fails to load: %v", seed, err)
		}
		res := infer.Run(mod.TInfo, mod.Diags, infer.Options{InferRestrictLets: true})
		return res.Sys
	}
	for seed := int64(0); seed < n; seed++ {
		label := fmt.Sprintf("progen seed %d", seed)
		memo := solve.NewMemo(0)
		seqSys := build(seed)
		seq := solve.Solve(seqSys)

		coldSys := build(seed)
		cold, _ := solveMemoized(coldSys, memo)
		if !requireExactMatch(t, label+" cold", seqSys, seq, coldSys, cold) {
			t.Fatalf("%s: cold memoized result differs from sequential", label)
		}

		warmSys := build(seed)
		warm, _ := solveMemoized(warmSys, memo)
		if !requireExactMatch(t, label+" warm", seqSys, seq, warmSys, warm) {
			t.Fatalf("%s: warm memoized result differs from sequential", label)
		}

		refSys := build(seed)
		ref := solve.SolveReference(refSys)
		compareSolutions(t, label, warmSys, warm, refSys, ref)
	}
}

// TestMemoWarmReplaysAllComponents pins the reuse accounting: after a
// cold run records every component, an identical warm run must replay
// all of them and solve none.
func TestMemoWarmReplaysAllComponents(t *testing.T) {
	memo := solve.NewMemo(0)
	cold, cc := solveMemoized(randomClusterSystem(7, 6), memo)
	if cc.Solved.Load() < 2 {
		t.Fatalf("system did not partition: %d components solved", cc.Solved.Load())
	}
	if cc.Replayed.Load() != 0 {
		t.Fatalf("cold run replayed %d components from an empty memo", cc.Replayed.Load())
	}
	warm, wc := solveMemoized(randomClusterSystem(7, 6), memo)
	if wc.Solved.Load() != 0 {
		t.Fatalf("warm run solved %d components fresh; want 0", wc.Solved.Load())
	}
	if wc.Replayed.Load() != cc.Solved.Load() {
		t.Fatalf("warm run replayed %d components; cold run solved %d",
			wc.Replayed.Load(), cc.Solved.Load())
	}
	if cold.Stats != warm.Stats {
		t.Fatalf("stats differ between cold and warm runs\n cold: %v\n warm: %v",
			cold.Stats, warm.Stats)
	}
	st := memo.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("implausible memo stats: %+v", st)
	}
}

// TestMemoPositionIndependence is the incremental engine's core claim
// at the solver level: the same program with shifted source positions
// (comment lines added above it) must hit the memo on every component
// — location names and constraint sites embed positions, and the
// fingerprint must exclude all of them.
func TestMemoPositionIndependence(t *testing.T) {
	build := func(src string) *effects.System {
		mod, err := core.LoadModule("p.mc", src)
		if err != nil {
			t.Fatalf("program fails to load: %v", err)
		}
		res := infer.Run(mod.TInfo, mod.Diags, infer.Options{InferRestrictLets: true})
		return res.Sys
	}
	// Find a progen program whose system actually partitions, so the
	// all-components-replayed assertion has teeth.
	found := false
	for seed := int64(0); seed < 50 && !found; seed++ {
		src := progen.Generate(seed)
		memo := solve.NewMemo(0)
		_, cc := solveMemoized(build(src), memo)
		if cc.Solved.Load() < 2 {
			continue
		}
		found = true

		shifted := "// a comment that shifts every span below\n\n\n" + src
		seqSys := build(shifted)
		seq := solve.Solve(seqSys)
		warmSys := build(shifted)
		warm, wc := solveMemoized(warmSys, memo)
		if wc.Solved.Load() != 0 {
			t.Errorf("seed %d: shifted source re-solved %d components; want pure replay",
				seed, wc.Solved.Load())
		}
		if wc.Replayed.Load() != cc.Solved.Load() {
			t.Errorf("seed %d: shifted source replayed %d of %d components",
				seed, wc.Replayed.Load(), cc.Solved.Load())
		}
		if !requireExactMatch(t, fmt.Sprintf("seed %d shifted", seed), seqSys, seq, warmSys, warm) {
			t.Errorf("seed %d: replay of shifted source differs from its own sequential solve", seed)
		}
	}
	if !found {
		t.Fatal("no progen seed in [0,50) produced a multi-component system")
	}
}

// TestMemoEvictionFallsBackCold runs a capacity-1 memo over systems
// with many components: almost every probe misses and entries churn
// constantly, and the result must still match the sequential solver
// exactly — eviction degrades reuse, never correctness.
func TestMemoEvictionFallsBackCold(t *testing.T) {
	memo := solve.NewMemo(1)
	for seed := int64(0); seed < 20; seed++ {
		seqSys := randomClusterSystem(seed, 6)
		seq := solve.Solve(seqSys)
		gotSys := randomClusterSystem(seed, 6)
		got, _ := solveMemoized(gotSys, memo)
		if !requireExactMatch(t, fmt.Sprintf("seed %d", seed), seqSys, seq, gotSys, got) {
			t.Fatalf("seed %d: capacity-1 memoized result differs from sequential", seed)
		}
	}
	st := memo.Stats()
	if st.Evictions == 0 {
		t.Fatalf("capacity-1 memo over %d-component systems never evicted: %+v", 6, st)
	}
	if st.Entries > 1 {
		t.Fatalf("capacity-1 memo holds %d entries", st.Entries)
	}
}

// TestMemoStatsDeterministic repeats warm solves at several worker
// counts and requires the wire-visible Stats to never wobble.
func TestMemoStatsDeterministic(t *testing.T) {
	memo := solve.NewMemo(0)
	base, _ := solveMemoized(randomClusterSystem(9, 6), memo)
	if base.Stats.Vars == 0 || base.Stats.AtomsPropagated == 0 {
		t.Fatalf("implausibly empty stats: %v", base.Stats)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			var c solve.MemoCounters
			got := solve.SolveOpts(context.Background(), randomClusterSystem(9, 6), solve.Options{
				Workers:  workers,
				Memo:     memo,
				Counters: &c,
			})
			if got.Stats != base.Stats {
				t.Fatalf("workers=%d rep=%d: stats differ\n cold: %v\n warm: %v",
					workers, rep, base.Stats, got.Stats)
			}
		}
	}
}
