package restrict

// Agreement between the two solving paths: for restrict-only systems,
// the O(kn) marked-search checker of Figure 5 and the full
// least-solution solver must produce exactly the same verdicts for
// every disinclusion. quick-checked over random programs.

import (
	"testing"
	"testing/quick"

	"localalias/internal/infer"
	"localalias/internal/parser"
	"localalias/internal/progen"
	"localalias/internal/solve"
	"localalias/internal/source"
	"localalias/internal/types"
)

func TestFigure5AgreesWithSolveQuick(t *testing.T) {
	prop := func(seed int64) bool {
		src := progen.Generate(seed)
		var diags source.Diagnostics
		prog := parser.Parse("gen.mc", src, &diags)
		tinfo := types.Check(prog, &diags)
		if diags.HasErrors() {
			t.Fatalf("generator output invalid:\n%s", diags.String())
		}
		res := infer.Run(tinfo, &diags, infer.Options{})

		// Path 1: Figure 5 per-constraint marked search.
		checker := solve.NewChecker(res.Sys)
		fig5 := map[int]bool{}
		for i, ni := range res.Sys.NotIns {
			fig5[i] = checker.Sat(ni)
		}

		// Path 2: full least-solution + membership.
		sol := solve.Solve(res.Sys)
		for i, ni := range res.Sys.NotIns {
			sat := !sol.ContainsLoc(ni.V, ni.Loc)
			if sat != fig5[i] {
				t.Logf("seed %d constraint %d (%s): Figure5=%v Solve=%v\n%s",
					seed, i, ni.What, fig5[i], sat, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckEntryPointPicksFigure5(t *testing.T) {
	// A program with explicit restricts only must take the O(kn)
	// path; adding a confine must switch to the least-solution path.
	srcRestrict := `
fun f(q: ref int): int {
    restrict p = q {
        return *p;
    }
    return 0;
}
`
	tinfo, diags := compile(t, srcRestrict)
	if r := Check(tinfo, diags); !r.UsedFigure5 {
		t.Error("restrict-only: must use Figure 5")
	}

	srcConfine := `
global locks: lock[4];
fun f(i: int) {
    confine &locks[i] {
        spin_lock(&locks[i]);
        spin_unlock(&locks[i]);
    }
}
`
	tinfo2, diags2 := compile(t, srcConfine)
	if r := Check(tinfo2, diags2); r.UsedFigure5 {
		t.Error("confine present: needs the least-solution path (kind/pair checks)")
	}
}
