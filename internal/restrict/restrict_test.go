package restrict

import (
	"strings"
	"testing"

	"localalias/internal/ast"
	"localalias/internal/infer"
	"localalias/internal/parser"
	"localalias/internal/source"
	"localalias/internal/types"
)

func compile(t *testing.T, src string) (*types.Info, *source.Diagnostics) {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("test.mc", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	tinfo := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("type errors:\n%s", diags.String())
	}
	return tinfo, &diags
}

// checkSrc runs restrict checking and returns the result.
func checkSrc(t *testing.T, src string) (*CheckResult, *source.Diagnostics) {
	t.Helper()
	tinfo, diags := compile(t, src)
	return Check(tinfo, diags), diags
}

func wantOK(t *testing.T, src string) *CheckResult {
	t.Helper()
	r, diags := checkSrc(t, src)
	if !r.OK() {
		t.Fatalf("expected annotations to check, got:\n%s", diags.String())
	}
	return r
}

func wantViolation(t *testing.T, src, substr string) *CheckResult {
	t.Helper()
	r, diags := checkSrc(t, src)
	if r.OK() {
		t.Fatalf("expected a restrict violation containing %q, got none", substr)
	}
	if substr != "" && !strings.Contains(diags.String(), substr) {
		t.Fatalf("expected violation containing %q, got:\n%s", substr, diags.String())
	}
	return r
}

// --- Section 2: the basic examples ---

func TestCheckValidDeref(t *testing.T) {
	// { int *restrict p = q; *p; }  — valid
	r := wantOK(t, `
fun f(q: ref int): int {
    restrict p = q {
        return *p;
    }
    return 0;
}
`)
	if !r.UsedFigure5 {
		t.Error("restrict-only program must use the Figure 5 checker")
	}
}

func TestCheckInvalidDerefOfOriginal(t *testing.T) {
	// *q inside the restrict of p=q is invalid.
	wantViolation(t, `
fun f(q: ref int): int {
    restrict p = q {
        return *q;
    }
    return 0;
}
`, "alias of the restricted location is used")
}

func TestCheckInvalidDerefOfAlias(t *testing.T) {
	// a aliases q (both flowed into the same cell), so *a is invalid
	// inside the restrict of q.
	wantViolation(t, `
global slot: ref int;
fun f(q: ref int, a: ref int): int {
    slot = q;
    slot = a; // a and q now share an abstract location
    restrict p = q {
        return *a;
    }
    return 0;
}
`, "alias of the restricted location is used")
}

func TestCheckUnaliasedOtherPointerOK(t *testing.T) {
	// A pointer that does NOT alias q may be dereferenced freely.
	wantOK(t, `
fun f(q: ref int, b: ref int): int {
    restrict p = q {
        return *p + *b;
    }
    return 0;
}
`)
}

func TestCheckRebindInInnerScope(t *testing.T) {
	// restrict r = p inside restrict p: *r valid, *p invalid.
	wantOK(t, `
fun f(q: ref int): int {
    restrict p = q {
        restrict r = p {
            return *r;
        }
        return *p;
    }
    return 0;
}
`)
	wantViolation(t, `
fun f(q: ref int): int {
    restrict p = q {
        restrict r = p {
            return *p;
        }
        return 0;
    }
    return 0;
}
`, "alias of the restricted location is used")
}

func TestCheckLocalCopyOK(t *testing.T) {
	// int *r = p; *r;  — a copy made inside the scope is usable.
	wantOK(t, `
fun f(q: ref int): int {
    restrict p = q {
        let r = p;
        return *r;
    }
    return 0;
}
`)
}

func TestCheckEscapeViaGlobal(t *testing.T) {
	// x = p: the restricted pointer escapes into a global.
	wantViolation(t, `
global x: ref int;
fun f(q: ref int) {
    restrict p = q {
        x = p;
    }
}
`, "escapes its scope")
}

func TestCheckEscapeViaHeap(t *testing.T) {
	wantViolation(t, `
fun f(q: ref int, cellp: ref ref int) {
    restrict p = q {
        *cellp = p;
    }
}
`, "escapes its scope")
}

func TestCheckEscapeViaReturn(t *testing.T) {
	wantViolation(t, `
fun f(q: ref int): ref int {
    restrict p = q {
        return p;
    }
    return q;
}
`, "escapes its scope")
}

func TestCheckDoubleRestrictSneaky(t *testing.T) {
	// restrict y = x in restrict z = x in ... *y ... *z — the
	// "restricting is itself an effect" rule must reject this.
	wantViolation(t, `
fun f(x: ref int): int {
    restrict y = x {
        restrict z = x {
            return *y + *z;
        }
        return 0;
    }
    return 0;
}
`, "")
}

func TestCheckSequentialRestrictsOK(t *testing.T) {
	// Non-overlapping scopes may restrict the same location twice.
	wantOK(t, `
fun f(x: ref int): int {
    restrict y = x {
        *y = 1;
    }
    restrict z = x {
        *z = 2;
    }
    return 0;
}
`)
}

// --- Section 3's example: p := q would leak the restricted location ---

func TestCheckSection3EscapeExample(t *testing.T) {
	// let x = new 0 in let p = ... in
	//   (restrict q = x in p := q; restrict r = x in **p)
	wantViolation(t, `
fun f(): int {
    let x = new 0;
    let p = new x;
    restrict q = x {
        *p = q;
    }
    restrict r = x {
        return **p;
    }
    return 0;
}
`, "escapes its scope")
}

// --- Effects through function calls ---

func TestCheckCalleeEffectViolates(t *testing.T) {
	// The callee dereferences the global alias of the restricted
	// location; its latent effect must flow to the call site.
	wantViolation(t, `
global cell: int[1];
fun touch(): int {
    return cell[0];
}
fun f(): int {
    restrict p = &cell[0] {
        return touch();
    }
    return 0;
}
`, "alias of the restricted location is used")
}

func TestCheckCalleeEffectHarmless(t *testing.T) {
	wantOK(t, `
global cell: int[1];
global other: int[1];
fun touch(): int {
    return other[0];
}
fun f(): int {
    restrict p = &cell[0] {
        return touch();
    }
    return 0;
}
`)
}

func TestCheckDownRuleEnablesRestrict(t *testing.T) {
	// The callee allocates and uses temporary storage. With (Down)
	// its latent effect is clean; without (Down) the temporary's
	// effects leak. This is the Section 3.1 motivation.
	src := `
fun scratch(): int {
    let tmp = new 7;
    *tmp = *tmp + 1;
    return *tmp;
}
fun f(q: ref int): int {
    restrict p = q {
        return *p + scratch();
    }
    return 0;
}
`
	wantOK(t, src)

	// Ablation: NoDown keeps the temporary's effect in scratch's
	// latent effect. It still does not alias q, so the restrict
	// succeeds — but the latent effect must be visibly larger.
	tinfo, diags := compile(t, src)
	resDown := infer.Run(tinfo, diags, infer.Options{})
	resNo := infer.Run(tinfo, diags, infer.Options{NoDown: true})
	solDown := solveAll(resDown)
	solNo := solveAll(resNo)
	nDown := len(solDown.Atoms(resDown.FunEff["scratch"]))
	nNo := len(solNo.Atoms(resNo.FunEff["scratch"]))
	if nDown >= nNo {
		t.Errorf("(Down) must shrink scratch's latent effect: with=%d without=%d", nDown, nNo)
	}
	if nDown != 0 {
		t.Errorf("scratch's latent effect must be empty with (Down), got %d atoms", nDown)
	}
}

func TestCheckNoDownBreaksRecursiveRestrict(t *testing.T) {
	// With recursion, the missing (Down) leaks the temporary's
	// location into the recursive latent effect; since the recursive
	// call sits inside the restrict of a pointer unified with that
	// temporary's location, checking fails without (Down) but
	// succeeds with it.
	// The recursive call happens inside the restrict of a temporary.
	// With (Down), rec's latent effect is empty (the temporary is
	// dead at the boundary); without it, alloc/read/write effects on
	// the temporary's location leak into the latent effect and land
	// inside the restrict scope, defeating the check — exactly the
	// behaviour Section 3.1 describes.
	src := `
fun rec(n: int): int {
    if (n == 0) {
        return 0;
    }
    let tmp = new 3;
    restrict p = tmp {
        *p = rec(n - 1);
        return *p;
    }
    return 0;
}
`
	tinfo, diags := compile(t, src)
	r := Check(tinfo, diags)
	if !r.OK() {
		t.Fatalf("with (Down) the program must check:\n%s", diags.String())
	}

	tinfo2, diags2 := compile(t, src)
	res2 := infer.Run(tinfo2, diags2, infer.Options{NoDown: true})
	vs := solveAll(res2).Violations()
	if len(vs) == 0 {
		t.Error("without (Down) the recursive restrict must fail")
	}
}

// --- Inference (Section 5) ---

func inferSrc(t *testing.T, src string, params bool) (*InferResult, *types.Info) {
	t.Helper()
	tinfo, diags := compile(t, src)
	r := Infer(tinfo, diags, Options{Params: params})
	return r, tinfo
}

func TestInferSimpleLet(t *testing.T) {
	r, tinfo := inferSrc(t, `
fun f(q: ref int): int {
    let p = q;
    return *p;
}
`, false)
	if len(r.Restricted) != 1 {
		t.Fatalf("want 1 restricted, got %d (%s)", len(r.Restricted), r.Summary())
	}
	// The AST must be marked.
	marked := 0
	ast.Inspect(tinfo.Prog, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeclStmt); ok && d.Restrict {
			marked++
		}
		return true
	})
	if marked != 1 {
		t.Errorf("DeclStmt.Restrict marks: %d", marked)
	}
}

func TestInferRejectsAliasUse(t *testing.T) {
	r, _ := inferSrc(t, `
fun f(q: ref int): int {
    let p = q;
    return *p + *q;
}
`, false)
	if len(r.Restricted) != 0 {
		t.Fatalf("p aliases q which is used: must stay let\n%s", r.Summary())
	}
	if len(r.Rejected) != 1 {
		t.Fatalf("rejected: %d", len(r.Rejected))
	}
	if !strings.Contains(strings.Join(r.Rejected[0].Reasons, " "), "accessed within") {
		t.Errorf("reason: %v", r.Rejected[0].Reasons)
	}
}

func TestInferRejectsEscape(t *testing.T) {
	r, _ := inferSrc(t, `
global x: ref int;
fun f(q: ref int) {
    let p = q;
    x = p;
}
`, false)
	if len(r.Restricted) != 0 {
		t.Fatalf("escaping let must stay let\n%s", r.Summary())
	}
}

func TestInferMixedCandidates(t *testing.T) {
	r, _ := inferSrc(t, `
fun f(q: ref int, w: ref int): int {
    let p = q;   // restrictable
    let b = w;   // NOT restrictable: w used below
    return *p + *b + *w;
}
`, false)
	if len(r.Restricted) != 1 || r.Restricted[0].Name != "p" {
		t.Fatalf("want only p restricted:\n%s", r.Summary())
	}
}

func TestInferOptimalityIsMaximal(t *testing.T) {
	// Every candidate that CAN be restricted IS: three independent
	// lets, all restrictable.
	r, _ := inferSrc(t, `
fun f(a: ref int, b: ref int, c: ref int): int {
    let x = a;
    let y = b;
    let z = c;
    return *x + *y + *z;
}
`, false)
	if len(r.Restricted) != 3 {
		t.Fatalf("maximality: want 3 restricted, got %d\n%s", len(r.Restricted), r.Summary())
	}
}

func TestInferChainedCopiesInsideScope(t *testing.T) {
	// let p = q; let r = p; *r — p restrictable (copy r is made and
	// used inside p's scope, which is legal), and r restrictable too.
	r, _ := inferSrc(t, `
fun f(q: ref int): int {
    let p = q;
    let r = p;
    return *r;
}
`, false)
	if len(r.Restricted) != 2 {
		t.Fatalf("want both restricted:\n%s", r.Summary())
	}
}

func TestInferParamFigure1(t *testing.T) {
	// The paper's Figure 1: do_with_lock's parameter is restrictable.
	r, _ := inferSrc(t, `
global locks: lock[8];
fun foo(i: int) {
    do_with_lock(&locks[i]);
}
fun do_with_lock(l: ref lock) {
    spin_lock(l);
    work();
    spin_unlock(l);
}
`, true)
	foundParam := false
	for _, c := range r.Restricted {
		if c.Kind == infer.CandParam && c.Name == "l" {
			foundParam = true
		}
	}
	if !foundParam {
		t.Fatalf("do_with_lock's parameter must be restrictable:\n%s", r.Summary())
	}
}

func TestInferParamRejectedWhenGlobalAliasUsed(t *testing.T) {
	// The body uses the global array the parameter aliases: the
	// parameter cannot be restricted.
	r, _ := inferSrc(t, `
global locks: lock[8];
fun bad(l: ref lock) {
    spin_lock(l);
    spin_unlock(&locks[0]); // touches the aliased array directly
}
fun foo() {
    bad(&locks[1]);
}
`, true)
	for _, c := range r.Restricted {
		if c.Kind == infer.CandParam && c.Name == "l" {
			t.Fatalf("parameter aliased to a used global must stay unrestricted:\n%s", r.Summary())
		}
	}
}

func TestInferExplicitRestrictStillChecked(t *testing.T) {
	// Inference mode must still verify explicit annotations.
	tinfo, diags := compile(t, `
fun f(q: ref int): int {
    restrict p = q {
        return *q;
    }
    return 0;
}
`)
	r := Infer(tinfo, diags, Options{})
	if len(r.Violations) == 0 {
		t.Fatal("explicit violation must be reported in inference mode")
	}
}

func TestInferUniqueness(t *testing.T) {
	// Running inference twice yields the same verdicts (least
	// solution is unique).
	src := `
global x: ref int;
fun f(q: ref int, w: ref int): int {
    let p = q;
    let b = w;
    x = b;
    return *p;
}
`
	r1, _ := inferSrc(t, src, false)
	r2, _ := inferSrc(t, src, false)
	if len(r1.Restricted) != len(r2.Restricted) {
		t.Fatalf("nondeterministic inference: %d vs %d", len(r1.Restricted), len(r2.Restricted))
	}
}
