package restrict

import (
	"localalias/internal/ast"
	"localalias/internal/infer"
	"localalias/internal/parser"
	"localalias/internal/solve"
	"localalias/internal/source"
)

// solveAll runs the least-solution solver over an inference result.
func solveAll(res *infer.Result) *solve.Result {
	return solve.Solve(res.Sys)
}

// parserParse wraps the parser for helpers that manage their own
// diagnostics.
func parserParse(src string, diags *source.Diagnostics) *ast.Program {
	return parser.Parse("test.mc", src, diags)
}
