package restrict

// Empirical validation of the Section 5 optimality claim: "our type
// rules always admit a unique maximum set of let expressions that can
// be restricted. Our inference algorithm computes this optimal
// annotation."
//
// For random programs we check both directions against the checker:
//
//   - every let that inference marks restrict, when checked as an
//     explicit restrict, verifies (soundness of inference);
//   - every let that inference leaves alone, when force-marked
//     restrict, FAILS checking (maximality: nothing restrictable was
//     missed).
//
// Because marking mutates the AST, each probe re-parses the program
// and replays the inferred marks plus one extra.

import (
	"testing"
	"testing/quick"

	"localalias/internal/ast"
	"localalias/internal/parser"
	"localalias/internal/progen"
	"localalias/internal/source"
	"localalias/internal/types"
)

// declStmts returns the DeclStmt nodes of a program in source order.
func declStmts(prog *ast.Program) []*ast.DeclStmt {
	var out []*ast.DeclStmt
	ast.Inspect(prog, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeclStmt); ok {
			out = append(out, d)
		}
		return true
	})
	return out
}

// checkWithMarks parses src, applies the restrict marks (by DeclStmt
// index), and reports whether restrict checking passes. Checking runs
// under the liberal Section 5 semantics, which is the semantics the
// optimality claim is stated for (inference's let-or-restrict rule
// makes the restrict effect conditional on use).
func checkWithMarks(t *testing.T, src string, marks map[int]bool) bool {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("probe.mc", src, &diags)
	tinfo := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("probe invalid:\n%s", diags.String())
	}
	for i, d := range declStmts(prog) {
		if marks[i] {
			d.Restrict = true
		}
	}
	var cdiags source.Diagnostics
	return CheckWith(tinfo, &cdiags, CheckOptions{Liberal: true}).OK()
}

func TestInferenceOptimalityQuick(t *testing.T) {
	probes := 0
	prop := func(seed int64) bool {
		src := progen.Generate(seed)

		// Run inference on a fresh parse.
		var diags source.Diagnostics
		prog := parser.Parse("gen.mc", src, &diags)
		tinfo := types.Check(prog, &diags)
		if diags.HasErrors() {
			t.Fatalf("generator output invalid:\n%s", diags.String())
		}
		// Only consider programs whose explicit annotations already
		// check: inference's guarantees are stated for such programs.
		var pre source.Diagnostics
		if !Check(tinfo, &pre).OK() {
			return true
		}

		var idiags source.Diagnostics
		Infer(tinfo, &idiags, Options{})

		inferred := map[int]bool{}
		var candidates []int
		for i, d := range declStmts(prog) {
			if d.Restrict {
				inferred[i] = true
			}
			// Ref-typed lets are the candidate population.
			if sym := tinfo.Binders[d]; sym != nil {
				if _, isRef := sym.Type.(*types.Ref); isRef {
					candidates = append(candidates, i)
				}
			}
		}

		// Soundness: the inferred annotation checks as explicit.
		if !checkWithMarks(t, src, inferred) {
			t.Logf("inferred annotation fails checking (seed %d):\n%s", seed, src)
			return false
		}

		// Maximality: adding any one rejected candidate must fail.
		for _, i := range candidates {
			if inferred[i] {
				continue
			}
			probes++
			extended := map[int]bool{i: true}
			for k := range inferred {
				extended[k] = true
			}
			if checkWithMarks(t, src, extended) {
				t.Logf("candidate %d was restrictable but not inferred (seed %d):\n%s",
					i, seed, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if probes == 0 {
		t.Error("no maximality probes ran; generator produced no rejected candidates")
	}
	t.Logf("maximality probes: %d", probes)
}
