// Package restrict provides the user-facing entry points for
// restrict checking (Section 4) and restrict inference (Section 5).
//
// Check verifies the restrict (and confine) annotations of a
// standard-typed program: it runs alias-and-effect inference to
// generate the constraint system and then tests every side condition.
// For programs whose only annotations are restricts, the test is the
// O(kn) CHECK-SAT algorithm of Figure 5; programs with confine
// annotations need the kind- and pair-checks of Section 6.1, which
// are evaluated against the full least solution.
//
// Infer decides, for every ref-typed let binding (and optionally
// every ref-typed parameter), whether it can soundly become a
// restrict, using the let-or-restrict conditional constraints. The
// least solution yields the unique maximum annotation (the paper's
// optimality result); successful let candidates are recorded by
// setting DeclStmt.Restrict.
package restrict

import (
	"fmt"

	"localalias/internal/ast"
	"localalias/internal/effects"
	"localalias/internal/infer"
	"localalias/internal/locs"
	"localalias/internal/solve"
	"localalias/internal/source"
	"localalias/internal/types"
)

// CheckResult reports restrict/confine checking.
type CheckResult struct {
	Infer      *infer.Result
	Violations []solve.Violation
	// UsedFigure5 reports whether the O(kn) marked-search path was
	// taken (restrict-only systems).
	UsedFigure5 bool
}

// OK reports whether every annotation checked out.
func (r *CheckResult) OK() bool { return len(r.Violations) == 0 }

// CheckOptions configures checking.
type CheckOptions struct {
	// Liberal uses the Section 5 semantics for the restrict effect:
	// restricting a location counts as an effect only if the
	// restricted copy is used (matching C99 and the inference rule).
	// The default is the strict Figure 2 rule.
	Liberal bool
	// SolverWorkers bounds the partitioned constraint solver's
	// concurrency when the system needs a full solve (conditional
	// constraints present); <= 1 solves sequentially. Results are
	// identical either way.
	SolverWorkers int
	// Memo, when non-nil, lets the solve replay content-addressed
	// component summaries recorded by earlier solves (and record new
	// ones). Replay is byte-identical to solving fresh.
	Memo *solve.Memo
	// MemoCounters, when non-nil, receives the solve's component
	// reuse accounting (replayed vs freshly solved).
	MemoCounters *solve.MemoCounters
}

// Check verifies all restrict and confine annotations in the program
// under the strict Figure 2 semantics. Violations are appended to
// diags (phase "restrict") and returned.
func Check(tinfo *types.Info, diags *source.Diagnostics) *CheckResult {
	return CheckWith(tinfo, diags, CheckOptions{})
}

// CheckWith is Check with explicit options.
func CheckWith(tinfo *types.Info, diags *source.Diagnostics, opts CheckOptions) *CheckResult {
	res := infer.Run(tinfo, diags, infer.Options{
		LiberalRestrictEffect: opts.Liberal,
	})
	out := &CheckResult{Infer: res}
	sys := res.Sys
	if len(sys.Conds) == 0 && len(sys.KindNotIns) == 0 && len(sys.PairNotIns) == 0 {
		out.UsedFigure5 = true
		out.Violations = solve.Check(sys)
	} else {
		sol := solve.SolveOpts(nil, sys, solve.Options{
			Workers: opts.SolverWorkers, Memo: opts.Memo, Counters: opts.MemoCounters,
		})
		out.Violations = sol.Violations()
		// Checking consumes nothing else from the solution, so its
		// pooled storage can go straight back for the next module.
		sol.Release()
	}
	for _, v := range out.Violations {
		diags.Errorf(tinfo.Prog.File, v.Site, "restrict", "%s", v.String())
	}
	return out
}

// InferResult reports restrict inference.
type InferResult struct {
	Infer    *infer.Result
	Solution *solve.Result
	// Restricted lists the candidates that became restricts;
	// Rejected the ones that stayed lets, with reasons.
	Restricted []*infer.Candidate
	Rejected   []Rejection
	// Violations are failures of explicit annotations present in the
	// same program.
	Violations []solve.Violation
}

// Rejection explains why a candidate stayed a let.
type Rejection struct {
	Cand    *infer.Candidate
	Reasons []string
}

// Options configures inference.
type Options struct {
	// Params additionally treats ref-typed parameters as restrict
	// candidates.
	Params bool
	// SolverWorkers bounds the partitioned constraint solver's
	// concurrency; <= 1 solves sequentially. Results are identical
	// either way.
	SolverWorkers int
	// Memo, when non-nil, lets the solve replay content-addressed
	// component summaries recorded by earlier solves (and record new
	// ones). Replay is byte-identical to solving fresh.
	Memo *solve.Memo
	// MemoCounters, when non-nil, receives the solve's component
	// reuse accounting (replayed vs freshly solved).
	MemoCounters *solve.MemoCounters
}

// Infer runs restrict inference, marking successful let candidates in
// the AST (DeclStmt.Restrict) and returning the full report.
// Violations of explicit annotations are appended to diags.
func Infer(tinfo *types.Info, diags *source.Diagnostics, opts Options) *InferResult {
	// Inference adopts the liberal Section 5 semantics throughout —
	// for candidates (inherently, via the conditional constraints)
	// and for explicit annotations alike — so the computed annotation
	// is the unique maximum under one consistent interpretation.
	res := infer.Run(tinfo, diags, infer.Options{
		InferRestrictLets:     true,
		InferRestrictParams:   opts.Params,
		LiberalRestrictEffect: true,
	})
	sol := solve.SolveOpts(nil, res.Sys, solve.Options{
		Workers: opts.SolverWorkers, Memo: opts.Memo, Counters: opts.MemoCounters,
	})
	out := &InferResult{Infer: res, Solution: sol}

	// Index the fired conditionals by the location pair their ActUnify
	// merges, once, instead of scanning all of sol.Fired per rejected
	// candidate (O(rejected × fired) on large modules). Reasons keep
	// firing order, and a conditional contributes one reason per pair
	// even if it carries both orientations.
	firedUnifies := make(map[[2]locs.Loc][]string)
	for _, f := range sol.Fired {
		var done [][2]locs.Loc
	actions:
		for _, a := range f.Actions {
			u, ok := a.(effects.ActUnify)
			if !ok {
				continue
			}
			key := [2]locs.Loc{u.A, u.B}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			for _, d := range done {
				if d == key {
					continue actions
				}
			}
			done = append(done, key)
			firedUnifies[key] = append(firedUnifies[key], f.Reason)
		}
	}

	for _, c := range res.Candidates {
		if res.Succeeded(c) {
			if d, ok := c.Node.(*ast.DeclStmt); ok {
				d.Restrict = true
			}
			out.Restricted = append(out.Restricted, c)
			continue
		}
		key := [2]locs.Loc{c.Rho, c.RhoP}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		why := firedUnifies[key]
		if len(why) == 0 {
			why = []string{"locations unified transitively by other constraints"}
		}
		out.Rejected = append(out.Rejected, Rejection{Cand: c, Reasons: why})
	}

	out.Violations = sol.Violations()
	for _, v := range out.Violations {
		diags.Errorf(tinfo.Prog.File, v.Site, "restrict", "%s", v.String())
	}
	return out
}

// Summary renders a one-line-per-candidate report.
func (r *InferResult) Summary() string {
	s := fmt.Sprintf("restrict inference: %d of %d candidates restricted\n",
		len(r.Restricted), len(r.Infer.Candidates))
	for _, c := range r.Restricted {
		s += fmt.Sprintf("  restrict %s %q\n", c.Kind, c.Name)
	}
	for _, rej := range r.Rejected {
		s += fmt.Sprintf("  keep     %s\n", rej.Reasons[0])
	}
	return s
}
