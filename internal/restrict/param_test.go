package restrict

// Tests for explicitly restrict-qualified parameters — the checked
// version of C99's "lock *restrict l" from the paper's introduction.

import (
	"strings"
	"testing"

	"localalias/internal/ast"
	"localalias/internal/infer"
	"localalias/internal/qual"
	"localalias/internal/solve"
	"localalias/internal/source"
	"localalias/internal/types"
)

func TestParamRestrictParsesAndPrints(t *testing.T) {
	tinfo, _ := compile(t, `
fun do_with_lock(l: restrict ref lock) {
    spin_lock(l);
    spin_unlock(l);
}
`)
	p := tinfo.Prog.Funs[0].Params[0]
	if !p.Restrict {
		t.Fatal("param restrict flag not set")
	}
	printed := ast.String(tinfo.Prog)
	if !strings.Contains(printed, "l: restrict ref lock") {
		t.Errorf("printer drops the qualifier:\n%s", printed)
	}
}

func TestParamRestrictValid(t *testing.T) {
	wantOK(t, `
global locks: lock[8];
fun do_with_lock(l: restrict ref lock) {
    spin_lock(l);
    work();
    spin_unlock(l);
}
fun foo(i: int) {
    do_with_lock(&locks[i]);
}
`)
}

func TestParamRestrictAliasUseRejected(t *testing.T) {
	// The body touches the global array the parameter aliases.
	wantViolation(t, `
global locks: lock[8];
fun bad(l: restrict ref lock) {
    spin_lock(l);
    spin_unlock(&locks[0]);
}
fun foo(i: int) {
    bad(&locks[i]);
}
`, "restrict parameter")
}

func TestParamRestrictEscapeRejected(t *testing.T) {
	wantViolation(t, `
global slot: ref int;
fun bad(p: restrict ref int) {
    slot = p;
}
`, "escapes the function")
}

func TestParamRestrictEscapeViaReturnRejected(t *testing.T) {
	wantViolation(t, `
fun bad(p: restrict ref int): ref int {
    return p;
}
`, "escapes the function")
}

func TestParamRestrictRequiresPointer(t *testing.T) {
	var diags source.Diagnostics
	prog := parseHelper(t, `
fun bad(n: restrict int): int {
    return n;
}
`, &diags)
	types.Check(prog, &diags)
	if !diags.HasErrors() || !strings.Contains(diags.String(), "must be a pointer") {
		t.Fatalf("non-pointer restrict param must be a type error:\n%s", diags.String())
	}
}

func TestParamRestrictEnablesStrongUpdates(t *testing.T) {
	// The annotated helper gets strong updates without any inference.
	tinfo, diags := compile(t, `
global locks: lock[8];
fun do_with_lock(l: restrict ref lock) {
    spin_lock(l);
    work();
    spin_unlock(l);
}
fun foo(i: int) {
    do_with_lock(&locks[i]);
}
`)
	res := infer.Run(tinfo, diags, infer.Options{})
	sol := solve.Solve(res.Sys)
	if vs := sol.Violations(); len(vs) != 0 {
		t.Fatalf("annotations must verify: %v", vs)
	}
	rep := qual.Analyze(res, sol, qual.ModePlain)
	if rep.NumErrors() != 0 {
		t.Errorf("explicit restrict param must recover strong updates: %v", rep.Errors)
	}
}

func TestParamRestrictNestedCallsSound(t *testing.T) {
	// The callee restricts its parameter and the caller restricts the
	// same array element around the call: legal rebinding, must
	// check.
	wantOK(t, `
global locks: lock[8];
fun inner(l: restrict ref lock) {
    spin_lock(l);
    spin_unlock(l);
}
fun outer(i: int) {
    restrict x = &locks[i] {
        inner(x);
    }
}
`)
}

func TestParamRestrictDoubleUseAcrossCallRejected(t *testing.T) {
	// The caller holds a restrict on the location AND touches it
	// directly while the callee (which restricts its parameter)
	// also gets it — the callee's restrict-effect write(ρ) lands in
	// the caller's scope... combined with the direct use this must
	// be rejected because the array location is accessed within the
	// caller's restrict scope.
	wantViolation(t, `
global locks: lock[8];
fun inner(l: restrict ref lock) {
    spin_lock(l);
    spin_unlock(l);
}
fun outer(i: int, j: int) {
    restrict x = &locks[i] {
        inner(&locks[j]);
    }
}
`, "alias of the restricted location is used")
}

func parseHelper(t *testing.T, src string, diags *source.Diagnostics) *ast.Program {
	t.Helper()
	prog := parserParse(src, diags)
	if diags.HasErrors() {
		t.Fatalf("parse:\n%s", diags.String())
	}
	return prog
}
