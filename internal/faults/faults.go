// Package faults provides per-module fault containment for the
// analysis pipeline: structured failure records, phase tracking with
// timings, and guards that convert panics and missed deadlines into
// values a corpus driver can aggregate instead of crashing on.
//
// The 589-module experiment (Section 7) must degrade gracefully: a
// panic or a pathological constraint system in one module may fail
// that module, but never the run. Workers wrap each module's analysis
// in Run (recover) or RunBounded (recover + wall-clock deadline);
// long-running loops such as the constraint solver call CheckDeadline
// periodically so a context cancellation aborts them cooperatively.
package faults

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"localalias/internal/obs"
)

// Phase identifies the pipeline stage that was executing when a
// failure occurred.
type Phase string

// The pipeline phases, in execution order.
const (
	PhaseGenerate  Phase = "generate"  // corpus source generation (drivergen)
	PhaseParse     Phase = "parse"     // lexing and parsing
	PhaseTypecheck Phase = "typecheck" // standard type checking
	PhaseInfer     Phase = "infer"     // alias-and-effect inference
	PhaseSolve     Phase = "solve"     // constraint solving
	PhaseQual      Phase = "qual"      // flow-sensitive qualifier analysis
)

// Phases returns the pipeline phases in execution order, for code
// that renders per-phase tables in a canonical order.
func Phases() []Phase {
	return []Phase{PhaseGenerate, PhaseParse, PhaseTypecheck, PhaseInfer, PhaseSolve, PhaseQual}
}

// Kind classifies a module failure.
type Kind string

// The failure kinds.
const (
	KindPanic   Kind = "panic"   // a panic was recovered
	KindTimeout Kind = "timeout" // the per-module deadline expired
	KindError   Kind = "error"   // the analysis returned an error
)

// ModuleFailure is the structured record of one module's failure:
// what module, in which phase, why, and (for panics) where. It
// implements error so pipeline results can carry it in error-typed
// fields.
type ModuleFailure struct {
	Module  string        `json:"module"`
	Phase   Phase         `json:"phase"`
	Kind    Kind          `json:"kind"`
	Message string        `json:"message"`
	Stack   string        `json:"stack,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

func (f *ModuleFailure) Error() string {
	return fmt.Sprintf("module %s: %s during %s: %s", f.Module, f.Kind, f.Phase, f.Message)
}

// PhaseTiming is the accumulated wall-clock time one module spent in
// one phase.
type PhaseTiming struct {
	Phase   Phase         `json:"phase"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Trace tracks which phase a module's analysis is currently in and
// accumulates per-phase timings. It is safe for concurrent use: the
// analysis goroutine advances it while a deadline watcher may read
// Current from outside.
type Trace struct {
	mu      sync.Mutex
	module  string
	phase   Phase
	start   time.Time
	order   []Phase
	elapsed map[Phase]time.Duration
	// spans, when non-nil, receives one obs span per phase interval as
	// it closes — the bridge from coarse phase tracking to real
	// request tracing. nil (the default) costs nothing.
	spans *obs.Trace
}

// NewTrace starts a trace for the named module.
func NewTrace(module string) *Trace {
	return &Trace{module: module, elapsed: make(map[Phase]time.Duration)}
}

// SetSpans attaches an obs trace: every phase interval the trace
// closes from now on is also recorded as a span (category "phase").
// Safe on a nil Trace, and a nil ot detaches.
func (t *Trace) SetSpans(ot *obs.Trace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = ot
	t.mu.Unlock()
}

// Spans returns the attached obs trace (nil when tracing is off).
func (t *Trace) Spans() *obs.Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// Enter marks the start of phase p, closing the timing of the phase
// previously entered (if any). Re-entering a phase accumulates.
func (t *Trace) Enter(p Phase) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closeLocked(now)
	t.phase, t.start = p, now
}

// closeLocked folds the currently open phase into the accumulator
// and, when an obs trace is attached, emits the interval as a span.
// A phase interrupted and re-entered emits one span per interval —
// exactly what a trace viewer should show.
func (t *Trace) closeLocked(now time.Time) {
	if t.phase == "" {
		return
	}
	if _, seen := t.elapsed[t.phase]; !seen {
		t.order = append(t.order, t.phase)
	}
	if d := now.Sub(t.start); d >= 0 {
		t.elapsed[t.phase] += d
		t.spans.Add(string(t.phase), "phase", t.start, d)
	}
	t.start = now
}

// Current returns the phase most recently entered ("" before the
// first Enter).
func (t *Trace) Current() Phase {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.phase
}

// Timings returns the per-phase wall-clock breakdown in first-entry
// order, including the still-open phase up to now.
func (t *Trace) Timings() []PhaseTiming {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closeLocked(now)
	out := make([]PhaseTiming, 0, len(t.order))
	for _, p := range t.order {
		out = append(out, PhaseTiming{Phase: p, Elapsed: t.elapsed[p]})
	}
	return out
}

// ---------------------------------------------------------------------
// Deadline abort

// deadlineAbort is the sentinel panic payload thrown by CheckDeadline
// and converted back into a KindTimeout failure by Run. It never
// escapes a Run guard.
type deadlineAbort struct{ err error }

// CheckDeadline aborts the current analysis with a timeout failure if
// ctx has been cancelled or its deadline has passed. Long CPU-bound
// loops (the solver's propagation loop in particular) call it
// periodically so a per-module deadline interrupts them between
// iterations rather than leaking a runaway goroutine. It must only be
// called under a Run/RunBounded guard; a nil ctx is a no-op.
func CheckDeadline(ctx context.Context) {
	if ctx == nil {
		return
	}
	if err := ctx.Err(); err != nil {
		panic(deadlineAbort{err})
	}
}

// ---------------------------------------------------------------------
// Worker panic forwarding

// WorkerPanic carries a panic captured on a helper goroutine (a
// parallel solver worker) back to the goroutine running under the
// Run/RunBounded guard. The guard unwraps it: the payload is
// classified exactly as if it had been thrown on the guarded
// goroutine itself — a CheckDeadline abort stays a timeout — and the
// stack is the worker's, captured where the panic happened, not the
// coordinator's re-throw site.
type WorkerPanic struct {
	// Val is the original panic payload.
	Val any
	// Stack is the worker goroutine's debug.Stack at recover time.
	Stack []byte
}

// CaptureWorkerPanic wraps a recovered panic payload for re-throw on
// the coordinating goroutine: the worker calls it inside its own
// recover with the payload, and the coordinator panics with the
// returned value under its Run/RunBounded guard. Deadline aborts pass
// through undecorated (their conversion needs no stack).
func CaptureWorkerPanic(p any) any {
	if _, ok := p.(deadlineAbort); ok {
		return p
	}
	return WorkerPanic{Val: p, Stack: debug.Stack()}
}

// ---------------------------------------------------------------------
// Guards

// Run executes fn under a recover guard, attributing any failure to
// the trace's current phase. It returns nil on success; a panic
// becomes a KindPanic failure with a trimmed stack, a CheckDeadline
// abort becomes KindTimeout, and a returned error becomes KindError.
// A WorkerPanic forwarded from a helper goroutine is unwrapped and
// classified like a local panic, keeping the worker's stack.
func Run(module string, tr *Trace, fn func() error) (fail *ModuleFailure) {
	start := time.Now()
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		mf := &ModuleFailure{Module: module, Phase: tr.Current(), Elapsed: time.Since(start)}
		if wp, ok := p.(WorkerPanic); ok {
			if da, ok := wp.Val.(deadlineAbort); ok {
				p = da
			} else {
				mf.Kind = KindPanic
				mf.Message = fmt.Sprint(wp.Val)
				mf.Stack = trimStack(wp.Stack)
				fail = mf
				return
			}
		}
		if da, ok := p.(deadlineAbort); ok {
			mf.Kind = KindTimeout
			mf.Message = da.err.Error()
		} else {
			mf.Kind = KindPanic
			mf.Message = fmt.Sprint(p)
			mf.Stack = trimStack(debug.Stack())
		}
		fail = mf
	}()
	if err := fn(); err != nil {
		return &ModuleFailure{
			Module: module, Phase: tr.Current(), Kind: KindError,
			Message: err.Error(), Elapsed: time.Since(start),
		}
	}
	return nil
}

// graceAfterDeadline is how long RunBounded waits, after the deadline
// expires, for the analysis goroutine to notice the cancellation
// (via CheckDeadline) and deliver a structured failure itself.
const graceAfterDeadline = 100 * time.Millisecond

// RunBounded is Run with a wall-clock deadline: fn executes on its
// own goroutine with a context that expires after timeout (0 means no
// deadline beyond ctx's own). If the deadline passes and fn does not
// abort cooperatively within a short grace period, RunBounded
// abandons the goroutine and returns a KindTimeout failure with the
// phase the trace last entered — one pathological module cannot stall
// the worker that ran it.
func RunBounded(ctx context.Context, module string, timeout time.Duration, tr *Trace, fn func(context.Context) error) *ModuleFailure {
	if ctx == nil {
		ctx = context.Background()
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	done := make(chan *ModuleFailure, 1)
	go func() {
		done <- Run(module, tr, func() error { return fn(ctx) })
	}()
	select {
	case f := <-done:
		return f
	case <-ctx.Done():
	}
	// Deadline passed; prefer the goroutine's own (phase-accurate)
	// timeout failure if it aborts within the grace period.
	grace := time.NewTimer(graceAfterDeadline)
	defer grace.Stop()
	select {
	case f := <-done:
		return f
	case <-grace.C:
	}
	return &ModuleFailure{
		Module: module, Phase: tr.Current(), Kind: KindTimeout,
		Message: fmt.Sprintf("%v (analysis goroutine abandoned)", ctx.Err()),
		Elapsed: time.Since(start),
	}
}

// ---------------------------------------------------------------------
// Stack rendering

// maxStackLines bounds the frames kept in a ModuleFailure: enough to
// locate the fault, small enough for a 589-module failure report.
const maxStackLines = 24

// trimStack drops the goroutine header and the recover/guard frames
// from a debug.Stack dump and caps its length, keeping the frames
// that actually identify the fault.
func trimStack(stack []byte) string {
	lines := strings.Split(strings.TrimRight(string(stack), "\n"), "\n")
	// Drop the "goroutine N [running]:" header, then the capture
	// machinery: debug.Stack, this package's deferred recover
	// closure, and the runtime's panic frame. The first frame after
	// those is the one that panicked (each frame is a function line
	// plus a tab-indented file:line).
	i := 0
	if len(lines) > 0 && strings.HasPrefix(lines[0], "goroutine ") {
		i = 1
	}
	for i+1 < len(lines) {
		fn := lines[i]
		if strings.HasPrefix(fn, "runtime/debug.Stack") ||
			strings.Contains(fn, "faults.Run.func") ||
			strings.Contains(fn, "faults.CaptureWorkerPanic") ||
			strings.HasPrefix(fn, "panic(") || strings.HasPrefix(fn, "runtime.gopanic") {
			i += 2
			continue
		}
		break
	}
	lines = lines[i:]
	if len(lines) > maxStackLines {
		lines = append(lines[:maxStackLines:maxStackLines], "\t...")
	}
	return strings.Join(lines, "\n")
}

// TopFrame returns the first source location ("file.go:123") in a
// trimmed stack, for one-line diagnostics that must not dump a raw
// stack trace.
func TopFrame(stack string) string {
	for _, line := range strings.Split(stack, "\n") {
		if strings.HasPrefix(line, "\t") {
			loc := strings.TrimSpace(line)
			if i := strings.IndexByte(loc, ' '); i > 0 {
				loc = loc[:i] // drop the "+0x..." suffix
			}
			return loc
		}
	}
	return ""
}
