package faults

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRunSuccess(t *testing.T) {
	tr := NewTrace("m")
	if f := Run("m", tr, func() error { return nil }); f != nil {
		t.Fatalf("unexpected failure: %v", f)
	}
}

func TestRunError(t *testing.T) {
	tr := NewTrace("m")
	tr.Enter(PhaseParse)
	f := Run("m", tr, func() error { return errors.New("boom") })
	if f == nil {
		t.Fatal("expected a failure")
	}
	if f.Kind != KindError || f.Phase != PhaseParse || f.Message != "boom" {
		t.Fatalf("got %+v", f)
	}
	if f.Stack != "" {
		t.Fatalf("error failures carry no stack, got %q", f.Stack)
	}
}

func TestRunPanic(t *testing.T) {
	tr := NewTrace("m")
	tr.Enter(PhaseInfer)
	f := Run("m", tr, func() error {
		tr.Enter(PhaseSolve)
		panic("solver invariant broken")
	})
	if f == nil {
		t.Fatal("expected a failure")
	}
	if f.Kind != KindPanic || f.Phase != PhaseSolve {
		t.Fatalf("got kind=%s phase=%s", f.Kind, f.Phase)
	}
	if !strings.Contains(f.Message, "solver invariant broken") {
		t.Fatalf("message %q", f.Message)
	}
	if f.Stack == "" || strings.HasPrefix(f.Stack, "goroutine ") || strings.Contains(f.Stack, "debug.Stack") {
		t.Fatalf("want a trimmed stack, got %q", f.Stack)
	}
	if !strings.Contains(f.Error(), "module m") || !strings.Contains(f.Error(), "solve") {
		t.Fatalf("Error() = %q", f.Error())
	}
	if top := TopFrame(f.Stack); !strings.Contains(top, ".go:") {
		t.Fatalf("TopFrame = %q from stack:\n%s", top, f.Stack)
	}
}

func TestCheckDeadlineAbort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := NewTrace("m")
	tr.Enter(PhaseSolve)
	f := Run("m", tr, func() error {
		CheckDeadline(ctx)
		t.Error("CheckDeadline should have aborted")
		return nil
	})
	if f == nil || f.Kind != KindTimeout || f.Phase != PhaseSolve {
		t.Fatalf("got %+v", f)
	}
	// nil context never aborts.
	CheckDeadline(nil)
	CheckDeadline(context.Background())
}

func TestRunBoundedTimeoutAbandons(t *testing.T) {
	tr := NewTrace("m")
	tr.Enter(PhaseQual)
	release := make(chan struct{})
	defer close(release)
	start := time.Now()
	f := RunBounded(context.Background(), "m", 50*time.Millisecond, tr, func(ctx context.Context) error {
		<-release // non-cooperative: ignores ctx entirely
		return nil
	})
	if f == nil || f.Kind != KindTimeout || f.Phase != PhaseQual {
		t.Fatalf("got %+v", f)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("abandonment took %v", el)
	}
}

func TestRunBoundedCooperativeTimeout(t *testing.T) {
	tr := NewTrace("m")
	f := RunBounded(context.Background(), "m", 30*time.Millisecond, tr, func(ctx context.Context) error {
		tr.Enter(PhaseSolve)
		for {
			CheckDeadline(ctx)
			time.Sleep(time.Millisecond)
		}
	})
	if f == nil || f.Kind != KindTimeout || f.Phase != PhaseSolve {
		t.Fatalf("got %+v", f)
	}
}

func TestRunBoundedNoTimeout(t *testing.T) {
	tr := NewTrace("m")
	if f := RunBounded(context.Background(), "m", 0, tr, func(ctx context.Context) error { return nil }); f != nil {
		t.Fatalf("unexpected failure: %v", f)
	}
}

func TestTraceTimings(t *testing.T) {
	tr := NewTrace("m")
	tr.Enter(PhaseParse)
	tr.Enter(PhaseInfer)
	tr.Enter(PhaseQual)
	tr.Enter(PhaseQual) // re-entry accumulates, no duplicate row
	got := tr.Timings()
	if len(got) != 3 {
		t.Fatalf("want 3 phases, got %v", got)
	}
	want := []Phase{PhaseParse, PhaseInfer, PhaseQual}
	for i, pt := range got {
		if pt.Phase != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
		if pt.Elapsed < 0 {
			t.Fatalf("negative elapsed in %v", got)
		}
	}
	var nilTrace *Trace
	nilTrace.Enter(PhaseParse) // nil trace is inert
	if nilTrace.Current() != "" || nilTrace.Timings() != nil {
		t.Fatal("nil trace should be inert")
	}
}
