// restrictinfer walks through the paper's Section 2 examples: which
// pointer uses are legal inside a restrict scope, which escapes are
// rejected, and how restrict inference (Section 5) finds the maximum
// set of lets that can soundly become restricts.
//
// Run with: go run ./examples/restrictinfer
package main

import (
	"fmt"
	"log"
	"os"

	"localalias/internal/ast"
	"localalias/internal/core"
)

// Each snippet is checked; the expected verdict mirrors the paper's
// Section 2 commentary.
var checks = []struct {
	title  string
	expect string // "ok" or "reject"
	src    string
}{
	{
		title:  "deref of the restricted pointer is valid",
		expect: "ok",
		src: `
fun f(q: ref int): int {
    restrict p = q {
        return *p;
    }
    return 0;
}`,
	},
	{
		title:  "deref of the original pointer inside the scope is invalid",
		expect: "reject",
		src: `
fun f(q: ref int): int {
    restrict p = q {
        return *q;
    }
    return 0;
}`,
	},
	{
		title:  "a local copy made inside the scope may be used",
		expect: "ok",
		src: `
fun f(q: ref int): int {
    restrict p = q {
        let r = p;
        return *r;
    }
    return 0;
}`,
	},
	{
		title:  "re-binding the restricted pointer in an inner scope",
		expect: "ok",
		src: `
fun f(q: ref int): int {
    restrict p = q {
        restrict r = p {
            return *r;
        }
        return *p;
    }
    return 0;
}`,
	},
	{
		title:  "a copy escaping into a global is invalid",
		expect: "reject",
		src: `
global x: ref int;
fun f(q: ref int) {
    restrict p = q {
        x = p;
    }
}`,
	},
	{
		title:  "restricting the same location twice and using both is invalid",
		expect: "reject",
		src: `
fun f(x: ref int): int {
    restrict y = x {
        restrict z = x {
            return *y + *z;
        }
        return 0;
    }
    return 0;
}`,
	},
}

const inferenceDemo = `
global sink: ref int;

fun f(q: ref int, w: ref int, leaky: ref int): int {
    let p = q;        // restrictable: q is never used below
    let b = w;        // NOT restrictable: w itself is read below
    let e = leaky;    // NOT restrictable: e escapes into a global
    sink = e;
    return *p + *b + *w;
}
`

func main() {
	fmt.Println("=== Section 2: checking restrict annotations ===")
	for _, c := range checks {
		mod, err := core.LoadModule("snippet.mc", c.src)
		if err != nil {
			log.Fatalf("%s: %v", c.title, err)
		}
		r := mod.CheckAnnotations()
		verdict := "ok"
		if !r.OK() {
			verdict = "reject"
		}
		status := "PASS"
		if verdict != c.expect {
			status = "FAIL"
		}
		fmt.Printf("[%s] %-62s -> %s\n", status, c.title, verdict)
		if verdict == "reject" {
			for _, v := range r.Violations {
				fmt.Printf("        %s\n", v.What)
			}
		}
	}

	fmt.Println("\n=== Section 5: restrict inference ===")
	mod, err := core.LoadModule("demo.mc", inferenceDemo)
	if err != nil {
		log.Fatal(err)
	}
	res := mod.InferRestrict(false)
	fmt.Print(res.Summary())
	fmt.Println("--- annotated program ---")
	if err := ast.Fprint(os.Stdout, mod.Prog); err != nil {
		log.Fatal(err)
	}
}
