// Quickstart: the paper's Figure 1, end to end.
//
// A driver locks one element of a global lock array through a helper
// function. A flow-sensitive analysis with only weak updates cannot
// verify the unlock; confine inference recovers the strong updates
// and the module verifies cleanly.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"localalias/internal/ast"
	"localalias/internal/core"
)

const figure1 = `
global locks: lock[8];

fun foo(i: int) {
    do_with_lock(&locks[i]);
}

fun do_with_lock(l: ref lock) {
    spin_lock(l);
    work();
    spin_unlock(l);
}
`

func main() {
	mod, err := core.LoadModule("figure1.mc", figure1)
	if err != nil {
		log.Fatal(err)
	}

	res, err := mod.AnalyzeLocking(core.LockingOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Figure 1: locking through an array element ===")
	fmt.Printf("without confine:    %d type error(s)\n", res.NoConfine.NumErrors())
	for _, e := range res.NoConfine.Errors {
		pos := mod.Prog.File.Position(e.Site.Start)
		fmt.Printf("    %s: %s\n", pos, e)
	}
	fmt.Printf("confine inference:  %d type error(s)\n", res.WithConfine.NumErrors())
	fmt.Printf("all-strong bound:   %d type error(s)\n", res.AllStrong.NumErrors())
	fmt.Printf("\nconfine candidates: %d planted, %d kept\n",
		res.Confine.Planted, len(res.Confine.Kept))

	fmt.Println("\n=== program after confine inference ===")
	if err := ast.Fprint(os.Stdout, mod.Prog); err != nil {
		log.Fatal(err)
	}
}
