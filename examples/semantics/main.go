// semantics demonstrates the paper's Section 3.2 operational model:
// restrict evaluates by copying the location and poisoning the
// original, so a checker-rejected program literally evaluates to err,
// while an accepted one runs and writes back.
//
// Run with: go run ./examples/semantics
package main

import (
	"fmt"
	"log"

	"localalias/internal/core"
	"localalias/internal/interp"
)

var programs = []struct {
	title string
	src   string
}{
	{
		title: "accepted: updates through the restricted copy write back",
		src: `
fun main(): int {
    let q = new 5;
    restrict p = q {
        *p = *p + 37;
    }
    return *q;
}`,
	},
	{
		title: "rejected: dereferencing the original inside the scope",
		src: `
fun main(): int {
    let q = new 5;
    restrict p = q {
        return *q;
    }
    return 0;
}`,
	},
	{
		title: "rejected: the restricted pointer escapes, later use errs",
		src: `
global slot: ref int;
fun main(): int {
    let q = new 5;
    restrict p = q {
        slot = p;
    }
    return *slot;
}`,
	},
	{
		title: "accepted: restrict-qualified parameter (checked C99 form)",
		src: `
fun bump(p: restrict ref int) {
    *p = *p + 1;
}
fun main(): int {
    let q = new 40;
    bump(q);
    bump(q);
    return *q;
}`,
	},
}

func main() {
	for _, pr := range programs {
		mod, err := core.LoadModule("demo.mc", pr.src)
		if err != nil {
			log.Fatal(err)
		}
		check := mod.CheckAnnotations()
		verdict := "ACCEPTED"
		if !check.OK() {
			verdict = "REJECTED"
		}

		in := interp.New(mod.TInfo, interp.Options{})
		v, runErr := in.Call("main")

		fmt.Printf("%-62s static: %s\n", pr.title, verdict)
		switch {
		case runErr == nil:
			fmt.Printf("%62s  runtime: ok, main() = %s\n", "", interp.FormatValue(v))
		default:
			fmt.Printf("%62s  runtime: %v\n", "", runErr)
		}
		// Theorem 1 in action: accepted ⇒ no err.
		if _, isErr := runErr.(*interp.RestrictErr); isErr && check.OK() {
			log.Fatal("soundness violated — this must never print")
		}
		fmt.Println()
	}
	fmt.Println("Theorem 1 held on every accepted program (as it must).")
}
