// locking analyzes a realistic driver fragment with three locking
// disciplines at once — a global lock array, per-device struct locks,
// and an interrupt handler with a real double-acquire bug — and shows
// how confine inference separates the spurious weak-update errors
// (eliminated) from the real bug (kept).
//
// Run with: go run ./examples/locking
package main

import (
	"fmt"
	"log"

	"localalias/internal/core"
	"localalias/internal/qual"
)

const driver = `
// A miniature network driver: 8 channels, each with its own lock in
// a global array, plus a device table guarded by per-device locks.

struct netdev {
    txlock: lock;
    pending: int;
    dropped: int;
}

global chan_locks: lock[8];
global chan_bytes: int[8];
global dev0: netdev;
global dev1: netdev;
global irq_lock: lock;

// Channel I/O: lock/unlock an array element (spurious errors under
// weak updates; confine inference recovers them).
fun channel_rx(ch: int, n: int) {
    spin_lock(&chan_locks[ch]);
    chan_bytes[ch] = chan_bytes[ch] + n;
    spin_unlock(&chan_locks[ch]);
}

// Per-device transmit path: the device pointer aliases dev0/dev1
// through the parameter (spurious errors; recovered).
fun xmit(d: ref netdev, n: int) {
    spin_lock(&d->txlock);
    d->pending = d->pending + n;
    spin_unlock(&d->txlock);
}

fun flush_all(n: int) {
    xmit(&dev0, n);
    xmit(&dev1, n);
}

// The interrupt path has a REAL bug: re-acquiring irq_lock.
fun irq_handler() {
    spin_lock(&irq_lock);
    spin_lock(&irq_lock); // bug: self-deadlock
    spin_unlock(&irq_lock);
}
`

func main() {
	mod, err := core.LoadModule("netdriver.mc", driver)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mod.AnalyzeLocking(core.LockingOptions{})
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, r *qual.Report) {
		fmt.Printf("%-20s %d error(s) at %d sites\n", name, r.NumErrors(), r.NumSites)
		for _, e := range r.Errors {
			pos := mod.Prog.File.Position(e.Site.Start)
			fmt.Printf("    %s: %s\n", pos, e)
		}
	}
	fmt.Println("=== three-mode locking analysis ===")
	show("no confine:", res.NoConfine)
	show("confine inference:", res.WithConfine)
	show("all-strong bound:", res.AllStrong)

	fmt.Printf("\nspurious errors eliminated: %d of %d potential (%d kept: the real bug)\n",
		res.Eliminated(), res.Potential(), res.WithConfine.NumErrors())

	fmt.Printf("confines planted/kept: %d/%d\n", res.Confine.Planted, len(res.Confine.Kept))
	for _, c := range res.Confine.Kept {
		pos := mod.Prog.File.Position(c.Site.Start)
		fmt.Printf("    kept confine %q at %s\n", c.Name, pos)
	}
}
