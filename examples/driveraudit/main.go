// driveraudit batch-audits a slice of the synthetic driver corpus —
// one module from each category plus every Figure 7 module — and
// prints a per-module report in the style of the paper's Section 7.
//
// Run with: go run ./examples/driveraudit
package main

import (
	"context"
	"fmt"

	"localalias/internal/drivergen"
	"localalias/internal/experiments"
)

func main() {
	corpus := drivergen.Corpus()
	byName := map[string]*drivergen.ModuleSpec{}
	for _, m := range corpus {
		byName[m.Name] = m
	}

	var picks []*drivergen.ModuleSpec
	picks = append(picks,
		byName["clean_000"],
		byName["buggy_000"],
		byName["driver_000"],
		byName["driver_137"],
	)
	for _, row := range drivergen.Figure7Paper() {
		picks = append(picks, byName[row.Name])
	}

	res := experiments.RunCorpus(context.Background(), experiments.CorpusOptions{Specs: picks})
	fmt.Printf("%-16s %-14s %8s %8s %8s %9s %6s\n",
		"module", "category", "no-inf", "confine", "strong", "eliminated", "kept")
	for _, m := range res.Modules {
		if m.Err != nil {
			fmt.Printf("%-16s ERROR: %v\n", m.Spec.Name, m.Err)
			continue
		}
		fmt.Printf("%-16s %-14s %8d %8d %8d %9d %6d\n",
			m.Spec.Name, m.Spec.Category,
			m.Measured.NoConfine, m.Measured.Confine, m.Measured.AllStrong,
			m.Eliminated(), m.Kept)
	}
	fmt.Printf("\naggregate over this sample: eliminated %d of %d potential spurious errors\n",
		res.Eliminated, res.Potential)
	fmt.Println("\n(run cmd/experiments for the full 589-module reproduction)")
}
