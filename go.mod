module localalias

go 1.22
